//! Downstream-model training cost — the "Train" phase of Figure 7 —
//! plus the GBDT histogram-granularity ablation from DESIGN.md.

use autofp_data::SynthConfig;
use autofp_models::classifier::{ModelKind, Trainer};
use autofp_models::gbdt::GbdtParams;
use autofp_models::tree::DecisionTreeParams;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_three_downstream_models(c: &mut Criterion) {
    let dataset = SynthConfig::new("bench-models", 500, 20, 3, 3).generate();
    let mut group = c.benchmark_group("train_500x20_3class");
    group.sample_size(10);
    for model in ModelKind::ALL {
        let trainer = model.trainer(0);
        group.bench_function(model.name(), |b| {
            b.iter(|| black_box(trainer.fit(&dataset.x, &dataset.y, dataset.n_classes)))
        });
    }
    group.finish();
}

fn bench_model_scaling_with_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("lr_train_rows_scaling");
    group.sample_size(10);
    for rows in [200usize, 800, 3200] {
        let dataset = SynthConfig::new("bench-rows", rows, 10, 2, 5).generate();
        let trainer = ModelKind::Lr.trainer(0);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &dataset, |b, d| {
            b.iter(|| black_box(trainer.fit(&d.x, &d.y, d.n_classes)))
        });
    }
    group.finish();
}

fn bench_gbdt_bins_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: histogram granularity vs training cost.
    let dataset = SynthConfig::new("bench-bins", 800, 15, 2, 7).generate();
    let mut group = c.benchmark_group("gbdt_histogram_bins");
    group.sample_size(10);
    for bins in [8usize, 48, 255] {
        let params = GbdtParams { n_bins: bins, n_rounds: 15, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(bins), &params, |b, p| {
            b.iter(|| black_box(p.fit(&dataset.x, &dataset.y, dataset.n_classes)))
        });
    }
    group.finish();
}

fn bench_budgeted_training(c: &mut Criterion) {
    // Cost of Hyperband rungs: fractional budgets must be cheaper.
    let dataset = SynthConfig::new("bench-budget", 600, 12, 2, 9).generate();
    let trainer = GbdtParams::default();
    let mut group = c.benchmark_group("gbdt_budget_fraction");
    group.sample_size(10);
    for pct in [10u64, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, &pct| {
            b.iter(|| {
                black_box(trainer.fit_budgeted(
                    &dataset.x,
                    &dataset.y,
                    dataset.n_classes,
                    pct as f64 / 100.0,
                ))
            })
        });
    }
    group.finish();
}

fn bench_decision_tree_depths(c: &mut Criterion) {
    let dataset = SynthConfig::new("bench-tree", 600, 12, 2, 11).generate();
    let mut group = c.benchmark_group("decision_tree_depth");
    group.sample_size(10);
    for depth in [1usize, 3, 10] {
        let params = DecisionTreeParams::with_depth(Some(depth));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &params, |b, p| {
            b.iter(|| black_box(p.fit(&dataset.x, &dataset.y, dataset.n_classes)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_three_downstream_models,
    bench_model_scaling_with_rows,
    bench_gbdt_bins_ablation,
    bench_budgeted_training,
    bench_decision_tree_depths
);
criterion_main!(benches);
