//! Wall-clock comparison of the Table-4-mini scenario matrix under the
//! three cache modes — no cache, a private cache per cell, and one
//! cache shared by every algorithm cell of a (dataset, model) group —
//! plus a fourth mode stacking the prefix-transform cache on top of
//! the shared trial cache.
//!
//! The matrix is 2 datasets × 2 models × 4 algorithms with an
//! eval-count budget, so all four modes run the exact same searches
//! and produce bit-identical cells; only how much evaluation work is
//! deduplicated differs. `max_len = 2` over the 7-variant default
//! space leaves only 56 distinct pipelines, and the algorithm mix is
//! duplicate-heavy by construction: both PNAS variants open with the
//! same 7 singles, and tournament evolution re-proposes mutated
//! parents — the redundancy the shared mode exploits. The prefix mode
//! additionally reuses transformed matrices across *distinct* trials
//! sharing a pipeline prefix, and across both models of a dataset.
//!
//! Run with `cargo bench -p autofp-bench --bench bench_matrix`.
//! Speedups are printed against the no-cache baseline; the run asserts
//! shared-cache beats per-cell caches on both wall-clock and misses,
//! and that the prefix layer skips transform steps without losing the
//! shared-cache wall-clock win.

use autofp_bench::{run_matrix, CacheMode, HarnessConfig, MatrixOutcome};
use autofp_core::Budget;
use autofp_data::{registry, DatasetSpec};
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;
use std::time::{Duration, Instant};

const ROUNDS: usize = 3;

fn measure<F: FnMut() -> MatrixOutcome>(mut f: F) -> (Duration, MatrixOutcome) {
    let mut out = f(); // warm-up round (page in data, prime allocator)
    let start = Instant::now();
    for _ in 0..ROUNDS {
        out = f();
    }
    (start.elapsed() / ROUNDS as u32, out)
}

fn main() {
    let mut cfg = HarnessConfig::default();
    cfg.scale = 0.2;
    cfg.budget = Budget::evals(32);
    cfg.max_len = 2;
    cfg.max_rows = 500;
    cfg.min_rows = 300;
    let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
    let models = [ModelKind::Lr, ModelKind::Xgb];
    let algorithms = [AlgName::Rs, AlgName::TevoH, AlgName::Pmne, AlgName::Plne];
    println!(
        "matrix = {} datasets x {} models x {} algorithms, {:?}, threads = {}\n",
        specs.len(),
        models.len(),
        algorithms.len(),
        cfg.budget,
        cfg.threads
    );

    cfg.cache_mode = CacheMode::Off;
    let (no_cache, base) = measure(|| run_matrix(&specs, &models, &algorithms, &cfg));
    println!("no cache          {:>9.1} ms   1.00x", no_cache.as_secs_f64() * 1e3);

    cfg.cache_mode = CacheMode::PerCell;
    let (per_cell, per_cell_out) = measure(|| run_matrix(&specs, &models, &algorithms, &cfg));
    println!(
        "per-cell caches   {:>9.1} ms   {:.2}x   ({} hits / {} lookups)",
        per_cell.as_secs_f64() * 1e3,
        no_cache.as_secs_f64() / per_cell.as_secs_f64(),
        per_cell_out.cache.hits,
        per_cell_out.cache.lookups(),
    );

    cfg.cache_mode = CacheMode::Shared;
    let (shared, shared_out) = measure(|| run_matrix(&specs, &models, &algorithms, &cfg));
    println!(
        "shared per group  {:>9.1} ms   {:.2}x   ({} hits / {} lookups)",
        shared.as_secs_f64() * 1e3,
        no_cache.as_secs_f64() / shared.as_secs_f64(),
        shared_out.cache.hits,
        shared_out.cache.lookups(),
    );

    cfg.prefix_cache = true;
    let (prefixed, prefixed_out) = measure(|| run_matrix(&specs, &models, &algorithms, &cfg));
    println!(
        "shared + prefix   {:>9.1} ms   {:.2}x   ({} hits / {} lookups, {} transform steps skipped)",
        prefixed.as_secs_f64() * 1e3,
        no_cache.as_secs_f64() / prefixed.as_secs_f64(),
        prefixed_out.prefix.hits,
        prefixed_out.prefix.lookups(),
        prefixed_out.prefix.steps_saved,
    );

    // All four modes must agree bit-for-bit on every cell.
    for (a, b) in base.cells.iter().zip(&shared_out.cells) {
        assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits(), "shared != off");
    }
    for (a, b) in base.cells.iter().zip(&per_cell_out.cells) {
        assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits(), "per-cell != off");
    }
    for (a, b) in base.cells.iter().zip(&prefixed_out.cells) {
        assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits(), "prefix != off");
        assert_eq!(a.best_pipeline, b.best_pipeline, "prefix != off");
    }
    assert!(
        prefixed_out.prefix.steps_saved > 0,
        "prefix cache must skip transform invocations on this duplicate-heavy matrix"
    );

    assert!(
        shared_out.cache.misses < per_cell_out.cache.misses,
        "shared cache must evaluate less than per-cell caches ({} vs {} misses)",
        shared_out.cache.misses,
        per_cell_out.cache.misses,
    );
    let speedup = no_cache.as_secs_f64() / shared.as_secs_f64();
    let vs_per_cell = per_cell.as_secs_f64() / shared.as_secs_f64();
    assert!(
        vs_per_cell >= 1.0,
        "shared cache must not be slower than per-cell caches (got {vs_per_cell:.2}x)"
    );
    let prefix_speedup = no_cache.as_secs_f64() / prefixed.as_secs_f64();
    // Timer noise allowance: prefix-cache savings land on transform
    // time the trial cache already mostly dedupes, so the win over
    // shared-only is small — but stacking the layer must never cost a
    // measurable fraction of the shared-mode win.
    assert!(
        prefix_speedup >= speedup * 0.9,
        "prefix layer must preserve the shared-cache wall-clock win \
         (shared {speedup:.2}x, +prefix {prefix_speedup:.2}x)"
    );
    println!(
        "\nok: shared cache is {speedup:.2}x no-cache and {vs_per_cell:.2}x per-cell \
         ({} fewer evaluations than per-cell); stacking the prefix cache is \
         {prefix_speedup:.2}x no-cache with {} transform steps skipped",
        per_cell_out.cache.misses - shared_out.cache.misses,
        prefixed_out.prefix.steps_saved,
    );
}
