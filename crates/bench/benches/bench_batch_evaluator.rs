//! Wall-clock comparison of sequential, parallel, and cached batch
//! evaluation (the §5 bottleneck attacked head-on).
//!
//! Three measurements over a 64-pipeline batch:
//!
//! 1. **sequential** — one `Evaluator::evaluate` call per pipeline;
//! 2. **parallel** — the same batch through a `BatchEvaluator` at the
//!    machine's available parallelism (scales with core count);
//! 3. **parallel+cache** — the same batch with an `EvalCache` attached;
//!    the batch is duplicate-heavy (8 distinct pipelines, 56 repeats —
//!    the re-proposal profile of evolutionary and density-model
//!    searches), so 7/8 of the work is served from memory.
//!
//! Run with `cargo bench -p autofp-bench --bench bench_batch_evaluator`.
//! Speedups are printed against the sequential baseline; the cached
//! path's win is core-count independent.

use autofp_core::{BatchEvaluator, EvalCache, EvalConfig, Evaluator};
use autofp_data::SynthConfig;
use autofp_linalg::rng::rng_from_seed;
use autofp_preprocess::{ParamSpace, Pipeline};
use std::time::{Duration, Instant};

const BATCH: usize = 64;
const DISTINCT: usize = 8;
const ROUNDS: usize = 3;

fn measure<F: FnMut()>(mut f: F) -> Duration {
    f(); // warm-up round (page in data, prime allocator)
    let start = Instant::now();
    for _ in 0..ROUNDS {
        f();
    }
    start.elapsed() / ROUNDS as u32
}

fn main() {
    let dataset = SynthConfig::new("batch-bench", 600, 10, 2, 7).generate();
    let evaluator = Evaluator::new(&dataset, EvalConfig::default());

    // 8 distinct pipelines, each proposed 8 times: 64 slots.
    let space = ParamSpace::default_space();
    let mut rng = rng_from_seed(3);
    let distinct: Vec<Pipeline> =
        (0..DISTINCT).map(|_| space.sample_pipeline(&mut rng, 4)).collect();
    let batch: Vec<Pipeline> =
        (0..BATCH).map(|i| distinct[i % DISTINCT].clone()).collect();

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("batch = {BATCH} pipelines ({DISTINCT} distinct), threads = {threads}\n");

    let sequential = measure(|| {
        for p in &batch {
            std::hint::black_box(evaluator.evaluate(p));
        }
    });
    println!("sequential        {:>9.1} ms   1.00x", sequential.as_secs_f64() * 1e3);

    let batch_eval = BatchEvaluator::new(&evaluator).with_threads(threads);
    let parallel = measure(|| {
        std::hint::black_box(batch_eval.evaluate_batch(&batch));
    });
    println!(
        "parallel          {:>9.1} ms   {:.2}x",
        parallel.as_secs_f64() * 1e3,
        sequential.as_secs_f64() / parallel.as_secs_f64()
    );

    // A fresh cache per round would defeat cross-batch hits, but the
    // within-batch dedup alone collapses 64 slots to 8 evaluations; the
    // warm-up round additionally makes the timed rounds all-hit, which
    // is exactly a search's steady state on re-proposed pipelines.
    let cache = EvalCache::new();
    let cached_eval = BatchEvaluator::new(&evaluator).with_threads(threads).with_cache(&cache);
    let cached = measure(|| {
        std::hint::black_box(cached_eval.evaluate_batch(&batch));
    });
    let stats = cache.stats();
    println!(
        "parallel + cache  {:>9.1} ms   {:.2}x",
        cached.as_secs_f64() * 1e3,
        sequential.as_secs_f64() / cached.as_secs_f64()
    );
    println!(
        "\ncache: {} hits / {} lookups ({:.0}% hit rate), {} entries, {:.1} ms eval time saved",
        stats.hits,
        stats.lookups(),
        stats.hit_rate() * 100.0,
        stats.entries,
        stats.saved.as_secs_f64() * 1e3,
    );

    let speedup = sequential.as_secs_f64() / cached.as_secs_f64();
    assert!(
        speedup >= 2.0,
        "cached batch evaluation must be at least 2x sequential (got {speedup:.2}x)"
    );
    println!("\nok: cached batch evaluation is {speedup:.2}x sequential (>= 2x required)");
}
