//! Surrogate-model fitting cost — the driver of the "Pick" overhead
//! differences between SMAC/TPE/PNAS in Figure 7 and the reason the
//! paper finds the cheap MLP surrogate (PMNE/PME) is the only one that
//! beats random search.

use autofp_linalg::rng::rng_from_seed;
use autofp_linalg::Matrix;
use autofp_preprocess::encoding::encode_pipeline;
use autofp_preprocess::ParamSpace;
use autofp_surrogate::lstm::{LstmRegParams, LstmRegressor};
use autofp_surrogate::mlp_reg::{MlpRegParams, MlpRegressor};
use autofp_surrogate::rf::{RandomForestRegressor, RfParams};
use autofp_surrogate::tpe::CategoricalTpe;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::hint::black_box;

/// Synthetic search history: n (pipeline, accuracy) observations.
fn history(n: usize) -> (Vec<Vec<f64>>, Vec<Vec<usize>>, Vec<(Vec<usize>, f64)>, Vec<f64>) {
    let space = ParamSpace::default_space();
    let mut rng = rng_from_seed(42);
    let mut encodings = Vec::with_capacity(n);
    let mut token_seqs = Vec::with_capacity(n);
    let mut tpe_obs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let p = space.sample_pipeline(&mut rng, 7);
        let tokens: Vec<usize> = p.kinds().iter().map(|k| k.index()).collect();
        let y: f64 = rng.gen_range(0.4..0.95);
        encodings.push(encode_pipeline(&p, 7));
        token_seqs.push(tokens.iter().map(|&t| t + 1).collect());
        tpe_obs.push((tokens, 1.0 - y));
        ys.push(y);
    }
    (encodings, token_seqs, tpe_obs, ys)
}

fn bench_surrogate_fit_cost(c: &mut Criterion) {
    let n = 50;
    let (encodings, token_seqs, tpe_obs, ys) = history(n);
    let x = Matrix::from_rows(&encodings);

    let mut group = c.benchmark_group("surrogate_fit_50_observations");
    group.sample_size(10);
    group.bench_function("random_forest (SMAC)", |b| {
        b.iter(|| black_box(RandomForestRegressor::fit(&x, &ys, &RfParams::default())))
    });
    group.bench_function("categorical_kde (TPE)", |b| {
        let tpe = CategoricalTpe::new(7, 7);
        b.iter(|| black_box(tpe.fit(&tpe_obs)))
    });
    group.bench_function("mlp (PMNE)", |b| {
        b.iter(|| black_box(MlpRegressor::fit(&x, &ys, &MlpRegParams::default())))
    });
    group.bench_function("lstm (PLNE)", |b| {
        b.iter(|| black_box(LstmRegressor::fit(&token_seqs, &ys, 8, &LstmRegParams::default())))
    });
    group.finish();
}

fn bench_surrogate_fit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlp_surrogate_history_scaling");
    group.sample_size(10);
    for n in [20usize, 80, 320] {
        let (encodings, _, _, ys) = history(n);
        let x = Matrix::from_rows(&encodings);
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| black_box(MlpRegressor::fit(x, &ys, &MlpRegParams::default())))
        });
    }
    group.finish();
}

fn bench_surrogate_predict_cost(c: &mut Criterion) {
    let (encodings, token_seqs, _, ys) = history(50);
    let x = Matrix::from_rows(&encodings);
    let mlp = MlpRegressor::fit(&x, &ys, &MlpRegParams::default());
    let lstm = LstmRegressor::fit(&token_seqs, &ys, 8, &LstmRegParams::default());
    let rf = RandomForestRegressor::fit(&x, &ys, &RfParams::default());
    let probe_enc = &encodings[0];
    let probe_seq = &token_seqs[0];

    let mut group = c.benchmark_group("surrogate_predict");
    group.bench_function("random_forest", |b| b.iter(|| black_box(rf.predict(probe_enc))));
    group.bench_function("mlp", |b| b.iter(|| black_box(mlp.predict(probe_enc))));
    group.bench_function("lstm", |b| b.iter(|| black_box(lstm.predict(probe_seq))));
    group.finish();
}

criterion_group!(
    benches,
    bench_surrogate_fit_cost,
    bench_surrogate_fit_scaling,
    bench_surrogate_predict_cost
);
criterion_main!(benches);
