//! Whole-search cost per algorithm under a fixed evaluation budget on a
//! tiny dataset: with training nearly free, the differences here are
//! the algorithms' own "Pick" overheads (Steps 2-3 of Algorithm 1).

use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
use autofp_data::SynthConfig;
use autofp_preprocess::ParamSpace;
use autofp_search::{make_searcher, AlgName};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_search_overhead(c: &mut Criterion) {
    // Tiny dataset: evaluation is microseconds, so the measured time is
    // dominated by algorithm-side work.
    let d = SynthConfig::new("bench-overhead", 60, 4, 2, 3).generate();
    let ev = Evaluator::new(&d, EvalConfig::default());

    let mut group = c.benchmark_group("search_20_evals_tiny_data");
    group.sample_size(10);
    for alg in [
        AlgName::Rs,
        AlgName::Anneal,
        AlgName::Pbt,
        AlgName::TevoH,
        AlgName::Smac,
        AlgName::Tpe,
        AlgName::Pmne,
        AlgName::Plne,
        AlgName::Reinforce,
        AlgName::Enas,
        AlgName::Hyperband,
        AlgName::Bohb,
    ] {
        group.bench_function(alg.as_str(), |b| {
            b.iter(|| {
                let mut s = make_searcher(alg, ParamSpace::default_space(), 4, 7);
                black_box(run_search(s.as_mut(), &ev, Budget::evals(20)))
            })
        });
    }
    group.finish();
}

fn bench_pick_time_share(c: &mut Criterion) {
    // Report-style bench: one iteration each, asserting the breakdown is
    // well-formed (criterion measures; the assertion guards regressions).
    let d = SynthConfig::new("bench-pick", 80, 5, 2, 5).generate();
    let ev = Evaluator::new(&d, EvalConfig::default());
    let mut group = c.benchmark_group("pick_share_probe");
    group.sample_size(10);
    group.bench_function("smac_vs_rs", |b| {
        b.iter(|| {
            let mut smac = make_searcher(AlgName::Smac, ParamSpace::default_space(), 4, 3);
            let out = run_search(smac.as_mut(), &ev, Budget::evals(12));
            let (pick, prep, train) = out.breakdown.percentages();
            assert!((pick + prep + train - 100.0).abs() < 1.0 || pick + prep + train == 0.0);
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search_overhead, bench_pick_time_share);
criterion_main!(benches);
