//! End-to-end pipeline-evaluation cost (Prep + Train) across dataset
//! sizes and models — the data behind the Figure 7 / Table 5 bottleneck
//! analysis.

use autofp_core::{EvalConfig, Evaluator};
use autofp_data::SynthConfig;
use autofp_models::classifier::ModelKind;
use autofp_preprocess::{Pipeline, PreprocKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn heavy_pipeline() -> Pipeline {
    Pipeline::from_kinds(&[
        PreprocKind::PowerTransformer,
        PreprocKind::QuantileTransformer,
        PreprocKind::StandardScaler,
    ])
}

fn bench_eval_by_rows(c: &mut Criterion) {
    let pipeline = heavy_pipeline();
    let mut group = c.benchmark_group("evaluate_rows_scaling_lr");
    group.sample_size(10);
    for rows in [200usize, 800, 3200] {
        let d = SynthConfig::new("bench-eval", rows, 12, 2, 5).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(rows), &ev, |b, ev| {
            b.iter(|| black_box(ev.evaluate(&pipeline)))
        });
    }
    group.finish();
}

fn bench_eval_by_cols(c: &mut Criterion) {
    let pipeline = heavy_pipeline();
    let mut group = c.benchmark_group("evaluate_cols_scaling_lr");
    group.sample_size(10);
    for cols in [5usize, 20, 80] {
        let d = SynthConfig::new("bench-eval-c", 500, cols, 2, 7).generate();
        let ev = Evaluator::new(&d, EvalConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(cols), &ev, |b, ev| {
            b.iter(|| black_box(ev.evaluate(&pipeline)))
        });
    }
    group.finish();
}

fn bench_eval_by_model(c: &mut Criterion) {
    let pipeline = heavy_pipeline();
    let d = SynthConfig::new("bench-eval-m", 600, 15, 3, 9).generate();
    let mut group = c.benchmark_group("evaluate_by_model_600x15");
    group.sample_size(10);
    for model in ModelKind::ALL {
        let ev = Evaluator::new(&d, EvalConfig { model, train_fraction: 0.8, seed: 0, train_subsample: None });
        group.bench_function(model.name(), |b| b.iter(|| black_box(ev.evaluate(&pipeline))));
    }
    group.finish();
}

criterion_group!(benches, bench_eval_by_rows, bench_eval_by_cols, bench_eval_by_model);
criterion_main!(benches);
