//! Figure 10 (and 29): Auto-FP in an AutoML context, default search
//! space — Auto-FP (PBT) vs TPOT-FP vs Auto-Sklearn-FP vs the HPO
//! module, per dataset and downstream model, under one shared budget
//! (the paper uses 600 s; scale with `--budget-ms`).
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_fig10
//!   [--scale S] [--budget-ms MS | --evals N] [--datasets K|all]`

use autofp_bench::HarnessConfig;
use autofp_preprocess::ParamSpace;

fn main() {
    let cfg = HarnessConfig::from_args();
    autofp_bench::automl_cmp::run(&cfg, "Figure 10", "default", ParamSpace::default_space);
    println!(
        "\nPaper's shape to match: Auto-FP ahead of TPOT-FP in most cells (larger space,\n\
         better search algorithm) and competitive with or ahead of HPO, especially for LR\n\
         and MLP — FP matters as much as hyperparameter tuning."
    );
}
