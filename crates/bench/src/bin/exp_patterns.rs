//! §5.2's frequent-pattern probe: "Are there any frequent excellent
//! feature preprocessor patterns?"
//!
//! Runs PBT (the top-ranked algorithm) on each dataset, collects the
//! best pipeline per (dataset, model), and mines frequent contiguous
//! preprocessor subsequences — the paper's FP-growth analysis. Expected
//! outcome: no long pattern with meaningful support.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_patterns
//!   [--scale S] [--budget-ms MS | --evals N] [--datasets K|all]`

use autofp_bench::{print_matrix_stats, print_table, run_matrix, HarnessConfig};
use autofp_core::patterns::{mine_frequent_subsequences, strongest_pattern};
use autofp_models::classifier::ModelKind;
use autofp_preprocess::Pipeline;
use autofp_search::AlgName;

fn main() {
    let cfg = HarnessConfig::from_args();
    let specs = cfg.specs();
    println!("== §5.2: frequent patterns in best pipelines (PBT) ==\n");

    let outcome = run_matrix(&specs, &ModelKind::ALL, &[AlgName::Pbt], &cfg);
    let results = &outcome.cells;
    // Parse the winning pipelines back from their display form via the
    // stored trial pipelines (best_pipeline strings are display-only, so
    // keep the analysis on CellResult's recorded winners).
    let best: Vec<Pipeline> = results
        .iter()
        .filter(|r| r.best_accuracy > r.baseline) // only "excellent" winners
        .filter_map(|r| parse_default_pipeline(&r.best_pipeline))
        .collect();
    println!(
        "collected {} winning pipelines from {} scenarios\n",
        best.len(),
        results.len()
    );

    let patterns = mine_frequent_subsequences(&best, 0.05, 4);
    let rows: Vec<Vec<String>> = patterns
        .iter()
        .take(20)
        .map(|p| {
            vec![
                p.display(),
                p.kinds.len().to_string(),
                p.count.to_string(),
                format!("{:.1}%", p.support * 100.0),
            ]
        })
        .collect();
    print_table(&["Pattern", "Len", "Count", "Support"], &rows);

    match strongest_pattern(&patterns, 2) {
        Some(p) => println!(
            "\nStrongest multi-preprocessor pattern: '{}' at {:.1}% support.",
            p.display(),
            p.support * 100.0
        ),
        None => println!("\nNo multi-preprocessor pattern reached 5% support."),
    }
    println!(
        "\nPaper's shape to match: \"the support of discovered patterns is very low, i.e.\n\
         there are no obvious frequent patterns\" — the search problem cannot be replaced\n\
         by a lookup rule."
    );
    print_matrix_stats(&outcome);
}

/// Parse a default-space pipeline back from its display string
/// ("A -> B"). Only default-parameter steps are produced by the
/// default-space search, so kind names suffice.
fn parse_default_pipeline(s: &str) -> Option<Pipeline> {
    if s == "(identity)" || s == "(none)" {
        return None;
    }
    let kinds: Option<Vec<_>> = s
        .split(" -> ")
        .map(|name| {
            autofp_preprocess::PreprocKind::ALL.iter().copied().find(|k| k.name() == name)
        })
        .collect();
    kinds.map(|k| Pipeline::from_kinds(&k))
}
