//! Figure 7 (and Figures 20-22): Pick/Prep/Train overhead percentage per
//! algorithm on the seven bottleneck-analysis datasets, for each
//! downstream model. Hyperband and BOHB are excluded, as in the paper
//! (their picking and evaluation phases interleave).
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_fig7
//!   [--scale S] [--budget-ms MS | --evals N] [--seed X]`

use autofp_bench::{f2, print_matrix_stats, print_table, run_matrix, HarnessConfig};
use autofp_data::registry::bottleneck_seven;
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;

fn main() {
    let cfg = HarnessConfig::from_args();
    let specs = bottleneck_seven();
    let algorithms: Vec<AlgName> = AlgName::ALL
        .into_iter()
        .filter(|a| !matches!(a, AlgName::Hyperband | AlgName::Bohb))
        .collect();
    println!("== Figure 7: overhead breakdown (Pick / Prep / Train, % of total) ==");
    println!("({} datasets x 3 models x {} algorithms)\n", specs.len(), algorithms.len());

    let outcome = run_matrix(&specs, &ModelKind::ALL, &algorithms, &cfg);
    let results = &outcome.cells;

    let mut rows = Vec::new();
    for r in results {
        let (pick, prep, train) = r.breakdown.percentages();
        rows.push(vec![
            r.dataset.clone(),
            r.model.name().to_string(),
            r.algorithm.to_string(),
            f2(pick),
            f2(prep),
            f2(train),
            r.breakdown.bottleneck().to_string(),
            r.n_evals.to_string(),
        ]);
    }
    print_table(
        &["Dataset", "Model", "Algorithm", "Pick %", "Prep %", "Train %", "Bottleneck", "#evals"],
        &rows,
    );

    // Aggregate: how often is each phase the bottleneck?
    let mut counts = [0usize; 3];
    for r in results {
        match r.breakdown.bottleneck() {
            "Pick" => counts[0] += 1,
            "Prep" => counts[1] += 1,
            _ => counts[2] += 1,
        }
    }
    println!(
        "\nBottleneck counts: Pick {} | Prep {} | Train {} (of {} scenarios)",
        counts[0],
        counts[1],
        counts[2],
        results.len()
    );
    println!(
        "\nPaper's shape to match: Train dominates in most scenarios, then Prep, then Pick;\n\
         surrogate-heavy algorithms (SMAC, TPE, PLNE/PLE) show visibly larger Pick shares."
    );
    print_matrix_stats(&outcome);
}
