//! Table 1: can data-characteristic rules predict whether FP helps?
//!
//! For each (dataset, model): measure the no-FP accuracy `A` and the
//! best accuracy `B` of N random FP pipelines; label the dataset 1 if
//! `B - A > 1.5pp`, else 0. Extract the 40 meta-features per dataset and
//! train depth-limited decision trees to predict the label, reporting
//! 3-fold CV scores (the paper finds them all ~0.5-0.7, i.e. no rule).
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_table1
//!   [--scale S] [--evals N] [--datasets K|all]`

use autofp_bench::{f2, print_table, HarnessConfig};
use autofp_core::{pool_map, run_search, Budget, EvalConfig, Evaluator};
use autofp_metafeatures::{meta_dataset, ExtractConfig};
use autofp_models::classifier::ModelKind;
use autofp_models::cv::cross_val_accuracy;
use autofp_models::tree::DecisionTreeParams;
use autofp_preprocess::ParamSpace;
use autofp_search::RandomSearch;

fn main() {
    let cfg = HarnessConfig::from_args();
    let n_pipelines = match cfg.budget {
        Budget { max_evals: Some(n), .. } => n,
        _ => 200,
    };
    let specs = cfg.specs();
    println!(
        "== Table 1: decision-tree rules from 40 meta-features ({} datasets, {} random pipelines) ==\n",
        specs.len(),
        n_pipelines
    );

    // Per model: (dataset, label) pairs, computed in parallel per dataset.
    let datasets: Vec<autofp_data::Dataset> =
        specs.iter().map(|s| cfg.generate(s)).collect();
    let mut cells = Vec::new();
    for di in 0..datasets.len() {
        for m in ModelKind::ALL {
            cells.push((di, m));
        }
    }
    let labels: Vec<(usize, ModelKind, usize)> =
        pool_map(cfg.threads.max(1), cells.len(), |i| {
            let (di, model) = cells[i];
            let ev = Evaluator::new(
                &datasets[di],
                EvalConfig { model, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
            );
            let mut rs = RandomSearch::new(
                ParamSpace::default_space(),
                cfg.max_len,
                autofp_linalg::rng::derive_seed(cfg.seed, i as u64),
            );
            let out = run_search(&mut rs, &ev, Budget::evals(n_pipelines));
            let improvement = out.best_accuracy() - ev.baseline_accuracy();
            let label = usize::from(improvement > 0.015);
            (di, model, label)
        });

    // Train trees per model.
    let mf_cfg = ExtractConfig { seed: cfg.seed, ..Default::default() };
    let mut rows = Vec::new();
    for model in ModelKind::ALL {
        let pairs: Vec<(autofp_data::Dataset, usize)> = labels
            .iter()
            .filter(|(_, m, _)| *m == model)
            .map(|(di, _, label)| (datasets[*di].clone(), *label))
            .collect();
        let positives = pairs.iter().filter(|(_, l)| *l == 1).count();
        let meta = meta_dataset(&pairs, &mf_cfg);
        for depth in [Some(1), Some(2), Some(3), None] {
            let tree = DecisionTreeParams::with_depth(depth);
            let cv = cross_val_accuracy(&tree, &meta, 3, cfg.seed);
            rows.push(vec![
                model.name().to_string(),
                depth.map_or("No Limit".into(), |d| d.to_string()),
                f2(cv),
                format!("{positives}/{} FP-helps labels", pairs.len()),
            ]);
        }
    }
    print_table(&["Model", "Tree Depth", "3-CV Score", "Label balance"], &rows);
    println!(
        "\nPaper's shape to match: 3-CV scores hover around 0.5-0.7 at every depth —\n\
         no data-characteristic rule reliably predicts when FP helps (Table 1)."
    );
}
