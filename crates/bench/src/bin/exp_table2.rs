//! Table 2: the TPOT-FP pipeline vs the best pipeline from the Figure 2
//! enumeration, on heart, forex, pd and wine (downstream model LR).
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_table2
//!   [--scale S] [--evals N | --budget-ms MS]`

use autofp_automl::TpotFp;
use autofp_bench::{f4, print_table, HarnessConfig};
use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
use autofp_data::spec_by_name;
use autofp_models::classifier::ModelKind;
use autofp_preprocess::enumerate::total_count;
use autofp_search::random::Exhaustive;

const DATASETS: [&str; 4] = ["heart", "forex", "pd", "wine"];

fn main() {
    let cfg = HarnessConfig::from_args();
    let enum_budget = match cfg.budget {
        Budget { max_evals: Some(n), .. } => Budget::evals(n.min(total_count(7, 4))),
        _ => Budget::evals(total_count(7, 4)),
    };
    println!("== Table 2: TPOT-FP pipeline vs best enumerated pipeline (LR) ==\n");

    let mut rows = Vec::new();
    for name in DATASETS {
        let spec = spec_by_name(name).expect("registry dataset");
        let dataset = cfg.generate(&spec);
        let ev = Evaluator::new(
            &dataset,
            EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
        );
        // TPOT-FP under the same budget the enumeration gets.
        let mut tpot = TpotFp::new(cfg.seed);
        let tpot_out = run_search(&mut tpot, &ev, enum_budget);
        // Exhaustive enumeration of the 2800 pipelines.
        let mut ex = Exhaustive { max_len: 4 };
        let enum_out = run_search(&mut ex, &ev, enum_budget);

        let tpot_best = tpot_out.best().expect("tpot evaluated");
        let enum_best = enum_out.best().expect("enumeration evaluated");
        rows.push(vec![
            name.to_string(),
            format!("{} / {}", tpot_best.pipeline, f4(tpot_best.accuracy)),
            format!("{} / {}", enum_best.pipeline, f4(enum_best.accuracy)),
            if enum_best.accuracy >= tpot_best.accuracy { "enum".into() } else { "TPOT".into() },
        ]);
    }
    print_table(
        &["Dataset", "TPOT-FP pipeline / acc", "Best enumerated pipeline / acc", "Winner"],
        &rows,
    );
    println!(
        "\nPaper's shape to match: the best pipeline from the length-<=4 enumeration wins\n\
         on all four datasets (longer pipelines beat TPOT's)."
    );
}
