//! Figure 11 (and 30): the same AutoML-context comparison as Figure 10,
//! with Auto-FP searching the *extended* low-cardinality space (Table 6)
//! via One-step semantics — the conclusion generalizes beyond the
//! default space.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_fig11
//!   [--scale S] [--budget-ms MS | --evals N] [--datasets K|all]`

use autofp_bench::HarnessConfig;
use autofp_preprocess::ParamSpace;

fn main() {
    let cfg = HarnessConfig::from_args();
    autofp_bench::automl_cmp::run(
        &cfg,
        "Figure 11",
        "extended low-cardinality (Table 6)",
        ParamSpace::low_cardinality,
    );
    println!(
        "\nPaper's shape to match: the Figure 10 conclusions hold in the extended space —\n\
         Auto-FP still beats TPOT-FP in most cells and stays as important as HPO."
    );
}
