//! Figure 9 (and 26-28): One-step vs Two-step over the extended
//! *high-cardinality* parameter search space (Table 7). The
//! QuantileTransformer holds ~99.3% of the flattened alphabet, so
//! One-step degenerates to quantile-only pipelines and Two-step wins.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_fig9
//!   [--scale S] [--budget-ms MS] [--seed X]`

use autofp_preprocess::ParamSpace;

fn main() {
    let (one_wins, total) = autofp_bench::extended_cmp::run(
        "Figure 9",
        "high-cardinality (Table 7)",
        ParamSpace::high_cardinality,
    );
    println!(
        "\nPaper's shape to match: Two-step ahead in most cells here ({} Two-step wins\n\
         of {} cells expected to be the majority) — One-step keeps sampling\n\
         QuantileTransformer variants and rarely composes other preprocessors.",
        total - one_wins,
        total
    );
}
