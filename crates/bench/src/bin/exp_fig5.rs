//! Figure 5: statistics of the 45 benchmark datasets (size, rows,
//! columns, classes) plus the binary/multi-class split.
//!
//! Regenerates the paper's dataset summary from the Table 9 registry.
//! Usage: `cargo run -p autofp-bench --bin exp_fig5`

use autofp_bench::print_table;
use autofp_data::registry;

fn main() {
    let specs = registry();
    println!("== Figure 5 / Table 9: dataset statistics ==\n");
    let rows: Vec<Vec<String>> = specs
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                format!("{:.2}", s.size_mb),
                s.rows.to_string(),
                s.cols.to_string(),
                s.classes.to_string(),
                if s.classes == 2 { "binary".into() } else { "multi".into() },
                if s.is_high_dimensional() { "high-dim".into() } else { s.size_bucket().into() },
            ]
        })
        .collect();
    print_table(
        &["Dataset", "Size (MB)", "# rows", "# cols", "# classes", "Task", "Table 5 bucket"],
        &rows,
    );

    let binary = specs.iter().filter(|s| s.classes == 2).count();
    let sizes: Vec<f64> = specs.iter().map(|s| s.size_mb).collect();
    let rows_range =
        (specs.iter().map(|s| s.rows).min().unwrap(), specs.iter().map(|s| s.rows).max().unwrap());
    let cols_range =
        (specs.iter().map(|s| s.cols).min().unwrap(), specs.iter().map(|s| s.cols).max().unwrap());
    println!("\nSummary (paper §5.1):");
    println!("  datasets: {} ({} binary, {} multi-class)", specs.len(), binary, specs.len() - binary);
    println!(
        "  file size: {:.2} MB .. {:.1} MB",
        sizes.iter().cloned().fold(f64::INFINITY, f64::min),
        sizes.iter().cloned().fold(0.0, f64::max)
    );
    println!("  rows: {} .. {}", rows_range.0, rows_range.1);
    println!("  cols: {} .. {}", cols_range.0, cols_range.1);
    println!(
        "  max classes: {}",
        specs.iter().map(|s| s.classes).max().unwrap()
    );
}
