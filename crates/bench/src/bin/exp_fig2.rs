//! Figure 2: distribution of LR validation accuracy over every pipeline
//! of length ≤ 4 (2800 pipelines) on heart, forex, pd and wine.
//!
//! Prints, per dataset, a 20-bin text histogram of pipeline accuracies,
//! the no-FP baseline (the paper's red line), and the best/worst
//! pipelines. Usage:
//! `cargo run --release -p autofp-bench --bin exp_fig2 [--scale S] [--evals N]`

use autofp_bench::{f4, HarnessConfig};
use autofp_core::{pool_map, run_search, Budget, EvalConfig, Evaluator};
use autofp_data::spec_by_name;
use autofp_models::classifier::ModelKind;
use autofp_preprocess::enumerate::total_count;
use autofp_search::random::Exhaustive;

const DATASETS: [&str; 4] = ["heart", "forex", "pd", "wine"];
const MAX_LEN: usize = 4;

fn main() {
    let cfg = HarnessConfig::from_args();
    let n_pipelines = match cfg.budget {
        Budget { max_evals: Some(n), .. } => n.min(total_count(7, MAX_LEN)),
        _ => total_count(7, MAX_LEN),
    };
    println!(
        "== Figure 2: accuracy distribution over {} pipelines (len <= {MAX_LEN}), LR ==",
        n_pipelines
    );
    println!("(scale {}, seed {})\n", cfg.scale, cfg.seed);

    let mut all: Vec<(String, Vec<f64>, f64)> =
        pool_map(cfg.threads.max(1), DATASETS.len(), |i| {
            let name = DATASETS[i];
            let spec = spec_by_name(name).expect("registry dataset");
            let dataset = cfg.generate(&spec);
            let ev = Evaluator::new(
                &dataset,
                EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
            );
            let mut searcher = Exhaustive { max_len: MAX_LEN };
            let outcome = run_search(&mut searcher, &ev, Budget::evals(n_pipelines));
            let accs: Vec<f64> = outcome.history.trials().iter().map(|t| t.accuracy).collect();
            (name.to_string(), accs, ev.baseline_accuracy())
        });
    all.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, accs, baseline) in &all {
        println!("--- {name} ({} pipelines evaluated) ---", accs.len());
        histogram(accs, *baseline);
        let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = accs.iter().cloned().fold(0.0_f64, f64::max);
        println!(
            "  no-FP baseline {}   best pipeline {}   worst pipeline {}",
            f4(*baseline),
            f4(max),
            f4(min)
        );
        println!(
            "  spread: {} of accuracy between worst and best; {} pipelines beat no-FP\n",
            f4(max - min),
            accs.iter().filter(|&&a| a > *baseline).count()
        );
    }
    println!(
        "Paper's shape to match: accuracies spread widely (e.g. heart 0.49..0.88), good\n\
         pipelines beat no-FP, bad pipelines fall far below it."
    );
}

fn histogram(accs: &[f64], baseline: f64) {
    let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = accs.iter().cloned().fold(0.0_f64, f64::max);
    let bins = 20usize;
    let width = ((max - min) / bins as f64).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &a in accs {
        let b = (((a - min) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let peak = *counts.iter().max().unwrap_or(&1);
    for (b, &c) in counts.iter().enumerate() {
        let lo = min + b as f64 * width;
        let bar = "#".repeat((c * 50 / peak.max(1)).max(usize::from(c > 0)));
        let marker = if baseline >= lo && baseline < lo + width { " <- no-FP" } else { "" };
        println!("  [{:.3},{:.3}) {:>5} {}{}", lo, lo + width, c, bar, marker);
    }
}
