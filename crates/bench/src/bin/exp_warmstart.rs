//! §8 research opportunity 1: warm-starting evolution-based search.
//!
//! Builds a [`MetaStore`] from "historical" tasks (a slice of the
//! registry), then compares cold PBT vs warm-started PBT on held-out
//! datasets under small budgets — where initialization quality matters
//! most.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_warmstart
//!   [--scale S] [--evals N] [--seed X]`

use autofp_automl::MetaStore;
use autofp_bench::{f4, print_table, HarnessConfig};
use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
use autofp_data::registry;
use autofp_metafeatures::{extract, ExtractConfig};
use autofp_preprocess::ParamSpace;
use autofp_search::{Pbt, RandomSearch};

fn main() {
    let cfg = HarnessConfig::from_args();
    let search_budget = match cfg.budget {
        Budget { max_evals: Some(n), .. } => Budget::evals(n),
        _ => Budget::evals(18),
    };
    let specs = registry();
    // Historical tasks: 8 small datasets; held-out: 4 others.
    let history_names = ["heart", "blood", "austrilian", "vehicle", "wine", "page", "wilt", "phoneme"];
    let heldout_names = ["mobile_price", "ionosphere", "kc1", "thyroid"];

    println!("== §8 extension: warm-started PBT vs cold PBT vs RS ==");
    println!("(historical tasks: {history_names:?})\n");

    let mf_cfg = ExtractConfig { seed: cfg.seed, ..Default::default() };
    let mut store = MetaStore::new();
    for name in history_names {
        let spec = specs.iter().find(|s| s.name == name).expect("registry");
        let dataset = cfg.generate(spec);
        let ev = Evaluator::new(
            &dataset,
            EvalConfig { seed: cfg.seed, ..Default::default() },
        );
        // "History": a short PBT run whose top pipelines get recorded.
        let mut pbt = Pbt::new(ParamSpace::default_space(), cfg.max_len, cfg.seed);
        let out = run_search(&mut pbt, &ev, search_budget);
        let mut trials: Vec<_> = out.history.trials().to_vec();
        trials.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
        let best: Vec<_> = trials.into_iter().take(3).map(|t| t.pipeline).collect();
        let meta = extract(&dataset, &mf_cfg).as_slice().to_vec();
        store.record(name, meta, best);
    }
    println!("meta-store built: {} tasks recorded\n", store.len());

    let mut rows = Vec::new();
    let mut warm_wins = 0;
    for name in heldout_names {
        let spec = specs.iter().find(|s| s.name == name).expect("registry");
        let dataset = cfg.generate(spec);
        let ev = Evaluator::new(
            &dataset,
            EvalConfig { seed: cfg.seed, ..Default::default() },
        );
        let meta = extract(&dataset, &mf_cfg).as_slice().to_vec();
        let seeds = store.warm_start(&meta, 3);

        let mut warm = Pbt::new(ParamSpace::default_space(), cfg.max_len, cfg.seed)
            .with_seed_pipelines(seeds.clone());
        let warm_acc = run_search(&mut warm, &ev, search_budget).best_accuracy();
        let mut cold = Pbt::new(ParamSpace::default_space(), cfg.max_len, cfg.seed);
        let cold_acc = run_search(&mut cold, &ev, search_budget).best_accuracy();
        let mut rs = RandomSearch::new(ParamSpace::default_space(), cfg.max_len, cfg.seed);
        let rs_acc = run_search(&mut rs, &ev, search_budget).best_accuracy();

        if warm_acc >= cold_acc {
            warm_wins += 1;
        }
        rows.push(vec![
            name.to_string(),
            f4(ev.baseline_accuracy()),
            f4(warm_acc),
            f4(cold_acc),
            f4(rs_acc),
            seeds.first().map(|p| p.to_string()).unwrap_or_default(),
        ]);
    }
    print_table(
        &["Held-out dataset", "no-FP", "Warm PBT", "Cold PBT", "RS", "First warm seed"],
        &rows,
    );
    println!(
        "\nWarm start matches or beats cold start on {warm_wins}/{} held-out datasets\n\
         under a tight budget — initialization from meta-similar tasks is the paper's\n\
         proposed direction for improving evolution-based Auto-FP.",
        rows.len()
    );
}
