//! §8 research opportunity 2: reduce data size to mitigate the
//! Prep/Train bottleneck.
//!
//! Compares PBT searching with the full training set vs a subsampled
//! training set, under the same *wall-clock* budget: subsampling lets
//! the search evaluate many more pipelines; the found pipeline is then
//! re-scored on the full training set (honest final accuracy).
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_reduction
//!   [--scale S] [--budget-ms MS] [--seed X]`

use autofp_bench::{f4, print_table, HarnessConfig};
use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
use autofp_data::spec_by_name;
use autofp_preprocess::ParamSpace;
use autofp_search::Pbt;
use std::time::Duration;

const DATASETS: [&str; 3] = ["electricity", "credit", "run_or_walk"];

fn main() {
    let cfg = HarnessConfig::from_args();
    let budget = match cfg.budget {
        Budget { wall_clock: Some(d), .. } => Budget::wall_clock(d),
        _ => Budget::wall_clock(Duration::from_millis(600)),
    };
    println!("== §8 extension: search on reduced training data ==");
    println!("(budget {budget:?}; reduced = 25% of training rows)\n");

    let mut rows = Vec::new();
    for name in DATASETS {
        let spec = spec_by_name(name).expect("registry");
        // Use a larger slice of these medium datasets so Train dominates.
        let dataset = spec.generate((cfg.scale * 4.0).min(1.0).min(4000.0 / spec.rows as f64));

        // Full-fidelity evaluator.
        let full_ev = Evaluator::new(
            &dataset,
            EvalConfig { seed: cfg.seed, ..Default::default() },
        );
        let mut full_pbt = Pbt::new(ParamSpace::default_space(), cfg.max_len, cfg.seed);
        let full_out = run_search(&mut full_pbt, &full_ev, budget);

        // Reduced-fidelity evaluator: 25% of training rows.
        let cap = (full_ev.split().train.n_rows() / 4).max(50);
        let red_ev = Evaluator::new(
            &dataset,
            EvalConfig { seed: cfg.seed, train_subsample: Some(cap), ..Default::default() },
        );
        let mut red_pbt = Pbt::new(ParamSpace::default_space(), cfg.max_len, cfg.seed);
        let red_out = run_search(&mut red_pbt, &red_ev, budget);
        // Honest final score: re-evaluate the found pipeline at full fidelity.
        let red_final = red_out
            .best()
            .map(|t| full_ev.evaluate(&t.pipeline).accuracy)
            .unwrap_or(0.0);

        rows.push(vec![
            name.to_string(),
            dataset.n_rows().to_string(),
            f4(full_ev.baseline_accuracy()),
            format!("{} ({} evals)", f4(full_out.best_accuracy()), full_out.history.len()),
            format!("{} ({} evals)", f4(red_final), red_out.history.len()),
        ]);
    }
    print_table(
        &["Dataset", "rows", "no-FP", "Full-data search", "25%-data search (rescored)"],
        &rows,
    );
    println!(
        "\nExpected shape: the reduced-fidelity search completes several times more\n\
         evaluations within the same budget and usually lands within noise of the\n\
         full-fidelity result — supporting the paper's call to \"reduce data size\n\
         intelligently\" as a bottleneck mitigation."
    );
}
