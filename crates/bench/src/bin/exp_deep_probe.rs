//! §8 deep-model probe: "Benchmark Auto-FP for Deep Models".
//!
//! The paper reports that 200 random FP pipelines change the validation
//! AUC of a DeepFM recommender on Tmall/Instacart-like CTR data. Those
//! datasets and DeepFM are proprietary/heavyweight; per DESIGN.md the
//! substitution is two synthetic CTR-like datasets (sparse, skewed,
//! imbalanced — the properties that matter) and the MLP as the deep,
//! scale-sensitive model, scored by AUC.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_deep_probe
//!   [--scale S] [--evals N] [--seed X]`

use autofp_bench::{f4, print_table, HarnessConfig};
use autofp_core::Budget;
use autofp_data::{Personality, SynthConfig};
use autofp_models::classifier::Trainer;
use autofp_models::metrics::auc_binary;
use autofp_models::mlp::MlpParams;
use autofp_preprocess::ParamSpace;

fn ctr_dataset(name: &str, seed: u64, rows: usize) -> autofp_data::Dataset {
    SynthConfig::new(name, rows, 16, 2, seed)
        .with_personality(Personality {
            scale_spread: 4.0,
            skew: 0.7,
            heavy_tail: 0.4,
            sparsity: 0.5,
            class_sep: 0.7,
            label_noise: 0.1,
            informative_frac: 0.6,
            imbalance: 1.0,
        })
        .generate()
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n_pipelines = match cfg.budget {
        Budget { max_evals: Some(n), .. } => n,
        _ => 200,
    };
    println!("== §8 probe: FP for a deep CTR model (MLP + AUC; DeepFM substituted) ==\n");

    let rows = (4000.0 * cfg.scale.max(0.05) * 25.0) as usize;
    let mut out_rows = Vec::new();
    for (name, seed) in [("tmall-like", 101u64), ("instacart-like", 202u64)] {
        let dataset = ctr_dataset(name, seed, rows.max(400));
        let split = dataset.stratified_split(0.8, cfg.seed);
        let trainer = MlpParams { max_epochs: 15, ..Default::default() };

        let auc_of = |train_x: &autofp_linalg::Matrix,
                      valid_x: &autofp_linalg::Matrix|
         -> f64 {
            let model = trainer.fit(train_x, &split.train.y, 2);
            let scores: Vec<f64> = valid_x
                .rows_iter()
                .map(|r| model.predict_proba_row(r, 2)[1])
                .collect();
            auc_binary(&split.valid.y, &scores)
        };

        // No-FP baseline AUC.
        let base_auc = auc_of(&split.train.x, &split.valid.x);

        // Best AUC over N random pipelines.
        let space = ParamSpace::default_space();
        let mut rng = autofp_linalg::rng::rng_from_seed(cfg.seed);
        let mut best_auc: f64 = 0.0;
        let mut best_pipe = String::from("(none)");
        for _ in 0..n_pipelines {
            let p = space.sample_pipeline(&mut rng, cfg.max_len);
            let (fitted, train_x) = p.fit_transform(&split.train.x);
            let valid_x = fitted.transform_new(&split.valid.x);
            let auc = auc_of(&train_x, &valid_x);
            if auc > best_auc {
                best_auc = auc;
                best_pipe = p.to_string();
            }
        }
        out_rows.push(vec![
            name.to_string(),
            f4(base_auc),
            f4(best_auc),
            format!("{:+.4}", best_auc - base_auc),
            best_pipe,
        ]);
    }
    print_table(
        &["Dataset", "AUC (no FP)", "AUC (best of random FP)", "Delta", "Best pipeline"],
        &out_rows,
    );
    println!(
        "\nPaper's shape to match: random FP pipelines move the deep model's validation AUC\n\
         substantially (the paper saw 0.5 -> 0.5875 on Tmall), i.e. Auto-FP applies to deep\n\
         models too."
    );
}
