//! Table 5: dominant bottleneck by dataset dimensionality/size bucket
//! and downstream model, for RS, PBT, TEVO_H and TEVO_Y.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_table5
//!   [--scale S] [--budget-ms MS | --evals N] [--datasets K|all]`

use autofp_bench::{print_matrix_stats, print_table, run_matrix, HarnessConfig};
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;
use std::collections::BTreeMap;

fn main() {
    let cfg = HarnessConfig::from_args();
    let specs = cfg.specs();
    let algorithms = [AlgName::Rs, AlgName::Pbt, AlgName::TevoH, AlgName::TevoY];
    println!("== Table 5: performance bottleneck by scenario bucket ==\n");

    let outcome = run_matrix(&specs, &ModelKind::ALL, &algorithms, &cfg);
    let results = &outcome.cells;

    // Bucket each dataset per the paper's rule.
    let bucket_of = |name: &str| -> String {
        let spec = specs.iter().find(|s| s.name == name).expect("spec");
        if spec.is_high_dimensional() {
            "High / All".to_string()
        } else {
            format!("Low / {}", spec.size_bucket())
        }
    };

    // Majority bottleneck per (bucket, model).
    let mut tally: BTreeMap<(String, &'static str), [usize; 3]> = BTreeMap::new();
    for r in results {
        let key = (bucket_of(&r.dataset), r.model.name());
        let t = tally.entry(key).or_insert([0; 3]);
        match r.breakdown.bottleneck() {
            "Pick" => t[0] += 1,
            "Prep" => t[1] += 1,
            _ => t[2] += 1,
        }
    }
    let mut rows = Vec::new();
    for ((bucket, model), counts) in &tally {
        let labels = ["Pick", "Prep", "Train"];
        let total: usize = counts.iter().sum();
        let winner = labels[counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap()];
        let mixed = counts.iter().filter(|&&c| c * 3 >= total).count() > 1;
        rows.push(vec![
            bucket.clone(),
            model.to_string(),
            if mixed { format!("{winner} (mixed)") } else { winner.to_string() },
            format!("Pick {} / Prep {} / Train {}", counts[0], counts[1], counts[2]),
        ]);
    }
    print_table(
        &["Dimensions / Size", "Model", "Dominant bottleneck", "Scenario counts"],
        &rows,
    );
    println!(
        "\nPaper's shape to match (Table 5): Train dominates almost everywhere; Prep shows\n\
         up for LR on low-dimensional medium datasets and mixes with Train elsewhere."
    );
    print_matrix_stats(&outcome);
}
