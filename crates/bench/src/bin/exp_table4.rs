//! Table 4 (and the per-dataset Tables 12-15): run all 15 search
//! algorithms over the dataset × model grid, print per-scenario
//! improvements and the overall average ranking.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_table4
//!   [--scale S] [--budget-ms MS | --evals N] [--datasets K|all] [--seed X]
//!   [--workers N | --remote addr,addr,...]
//!   [--supervise-max-restarts R] [--supervise-backoff-ms MS]`
//!
//! `--workers N` spawns N supervised local `evald` daemons — dead
//! workers are respawned in the background and requests fail over to
//! rendezvous successors in the meantime — and routes every evaluation
//! through the sharded remote evaluator; `--remote` points at an
//! already-running (unsupervised) fleet instead.

use autofp_bench::{
    f2, print_matrix_stats, print_table, run_matrix, spawn_supervised_fleet, HarnessConfig,
};
use autofp_core::ranking::{average_rankings, order_by_rank, Scenario, IMPROVEMENT_THRESHOLD};
use autofp_models::classifier::ModelKind;
use autofp_search::AlgName;
use std::collections::BTreeMap;

fn main() {
    let mut cfg = HarnessConfig::from_args();
    // Spawn the local fleet first so it dies with this process (drop
    // shuts the children down) even if the run panics. The supervisor
    // moves onto a background monitor thread that respawns dead workers
    // and republishes the epoch-bumped fleet spec the matrix routes
    // over.
    let monitor = if cfg.workers > 0 && cfg.remote_addrs.is_empty() {
        let supervisor =
            spawn_supervised_fleet(cfg.workers, cfg.supervisor_config()).expect("spawn evald workers");
        println!(
            "spawned {} supervised evald workers: {:?}\n",
            supervisor.len(),
            supervisor.addrs()
        );
        cfg.fleet_spec = Some(supervisor.fleet());
        Some(supervisor.monitor(std::time::Duration::from_millis(500)))
    } else {
        None
    };
    let specs = cfg.specs();
    let algorithms = AlgName::ALL;
    println!(
        "== Table 4: average ranking of 15 algorithms over {} datasets x 3 models ==",
        specs.len()
    );
    println!("(scale {}, budget {:?}, seed {})\n", cfg.scale, cfg.budget, cfg.seed);

    let outcome = run_matrix(&specs, &ModelKind::ALL, &algorithms, &cfg);
    let results = &outcome.cells;

    // Tables 12-15 analogue: per-(dataset, model) improvement in pp.
    println!("-- Per-scenario validation-accuracy improvement (percentage points) --");
    let mut header = vec!["Dataset", "Model"];
    header.extend(algorithms.iter().map(|a| a.as_str()));
    let mut grouped: BTreeMap<(String, &'static str), Vec<f64>> = BTreeMap::new();
    let mut baselines: BTreeMap<(String, &'static str), f64> = BTreeMap::new();
    for r in results {
        let key = (r.dataset.clone(), r.model.name());
        let entry = grouped.entry(key.clone()).or_insert_with(|| vec![0.0; algorithms.len()]);
        let ai = algorithms.iter().position(|a| a.as_str() == r.algorithm).expect("known alg");
        entry[ai] = r.best_accuracy;
        baselines.insert(key, r.baseline);
    }
    let mut rows = Vec::new();
    for ((dataset, model), accs) in &grouped {
        let baseline = baselines[&(dataset.clone(), *model)];
        let mut row = vec![dataset.clone(), model.to_string()];
        row.extend(accs.iter().map(|a| f2(((a - baseline) * 100.0).max(0.0))));
        rows.push(row);
    }
    print_table(&header, &rows);

    // Table 4: rank per scenario over the improving scenarios.
    let mut scenarios: Vec<(ModelKind, Scenario)> = Vec::new();
    for ((dataset, model), accs) in &grouped {
        let model_kind = ModelKind::ALL.iter().copied().find(|m| m.name() == *model).unwrap();
        scenarios.push((
            model_kind,
            Scenario {
                label: format!("{dataset}/{model}"),
                baseline: baselines[&(dataset.clone(), *model)],
                accuracies: accs.clone(),
            },
        ));
    }

    println!("\n-- Average ranking (scenarios with >= 1.5pp improvement) --");
    let mut ranking_rows = Vec::new();
    for model in ModelKind::ALL {
        let per_model: Vec<Scenario> = scenarios
            .iter()
            .filter(|(m, _)| *m == model)
            .map(|(_, s)| s.clone())
            .collect();
        let (ranks, n) = average_rankings(&per_model, IMPROVEMENT_THRESHOLD);
        let mut row = vec![format!("{} ({} scenarios)", model.name(), n)];
        row.extend(ranks.iter().map(|r| f2(*r)));
        ranking_rows.push(row);
    }
    let all_s: Vec<Scenario> = scenarios.iter().map(|(_, s)| s.clone()).collect();
    let (overall, n_improving) = average_rankings(&all_s, IMPROVEMENT_THRESHOLD);
    let mut row = vec![format!("Overall ({n_improving} scenarios)")];
    row.extend(overall.iter().map(|r| f2(*r)));
    ranking_rows.push(row);
    let mut header2 = vec!["Scope"];
    header2.extend(algorithms.iter().map(|a| a.as_str()));
    print_table(&header2, &ranking_rows);

    println!("\n-- Algorithms ordered by overall average rank (best first) --");
    for (pos, idx) in order_by_rank(&overall).iter().enumerate() {
        println!(
            "  {:>2}. {:<10} ({:<22}) avg rank {}",
            pos + 1,
            algorithms[*idx].as_str(),
            algorithms[*idx].category(),
            f2(overall[*idx])
        );
    }
    println!(
        "\nPaper's shape to match: evolution-based algorithms (PBT, TEVO_*) lead; RS is a\n\
         strong baseline; RL-based (REINFORCE, ENAS), bandit-based (HYPERBAND, BOHB) and\n\
         the LSTM-surrogate PNAS variants trail RS; PMNE/PME are the surrogate exceptions."
    );
    print_matrix_stats(&outcome);

    // With a remote fleet, report each worker's cumulative counters
    // before the fleet is torn down. Under supervision the membership
    // may have changed mid-run (respawned workers come back on fresh
    // ports), so read the addresses from the live spec.
    let worker_addrs: Vec<String> = match &cfg.fleet_spec {
        Some(fleet) => fleet.snapshot().addrs,
        None => cfg.remote_addrs.clone(),
    };
    if !worker_addrs.is_empty() {
        println!("\n-- evald worker stats --");
        for addr in &worker_addrs {
            match autofp_evald::stats(addr, std::time::Duration::from_secs(5)) {
                Ok(s) => println!(
                    "  {addr}: served={} contexts={} hits={} misses={} entries={} evictions={} \
                     prefix_hits={} prefix_steps_saved={}",
                    s.served,
                    s.contexts,
                    s.hits,
                    s.misses,
                    s.entries,
                    s.evictions,
                    s.prefix_hits,
                    s.prefix_steps_saved
                ),
                Err(e) => println!("  {addr}: unreachable ({e})"),
            }
        }
    }
    drop(monitor);
}
