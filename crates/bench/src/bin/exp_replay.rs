//! Simulated search: replay a persisted trial repository with zero
//! real evaluations.
//!
//! A previous matrix run with `--trial-store DIR` persisted every
//! finished trial to an append-only on-disk repository. This binary
//! reruns the same dataset × model × algorithm matrix against that
//! repository alone — every evaluation is answered from disk
//! ([`ReplayEvaluator`]), no dataset is ever transformed and no model
//! is ever trained — the TabRepo-style "simulated search" the store
//! exists for.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_replay --
//!   --trial-store DIR [--scale S] [--evals N] [--datasets K|all]
//!   [--seed X] [--cells-out PATH]`
//!
//! The config flags must match the run that populated the store: the
//! repository is keyed by context identity (dataset, scale, model,
//! train fraction, seed, subsample), so a mismatched config resolves
//! to segments the original run never wrote. With a deterministic
//! `--evals` budget the replayed matrix is bit-identical to the run
//! that populated the store (CI `cmp`s the `--cells-out` TSVs); under
//! a wall-clock budget the search may propose a tail of pipelines the
//! store has never seen, which replay reports as missing.

use autofp_bench::{f4, print_matrix_stats, print_table, run_matrix_with, HarnessConfig};
use autofp_core::{
    EvalConfig, EvalError, Evaluate, ReplayEvaluator, Trial, TrialRepo,
};
use autofp_data::spec_by_name;
use autofp_models::classifier::ModelKind;
use autofp_models::CancelToken;
use autofp_preprocess::Pipeline;
use autofp_search::AlgName;
use std::collections::BTreeMap;
use std::sync::Arc;

/// [`Evaluate`] by delegation to a shared [`ReplayEvaluator`], so the
/// binary can keep a handle to every group's replay counters while the
/// matrix owns the boxed evaluator.
struct SharedReplay(Arc<ReplayEvaluator>);

impl Evaluate for SharedReplay {
    fn evaluate_raw(
        &self,
        pipeline: &Pipeline,
        fraction: f64,
        cancel: &CancelToken,
    ) -> Result<Trial, EvalError> {
        self.0.evaluate_raw(pipeline, fraction, cancel)
    }

    fn config(&self) -> &EvalConfig {
        self.0.config()
    }

    fn baseline_accuracy(&self) -> f64 {
        self.0.baseline_accuracy()
    }

    fn train_rows(&self) -> usize {
        self.0.train_rows()
    }
}

fn main() {
    let mut cfg = HarnessConfig::from_args();
    let Some(dir) = cfg.trial_store.take() else {
        eprintln!(
            "error: exp_replay needs --trial-store <dir> \
             (a repository populated by a previous --trial-store run)"
        );
        std::process::exit(2);
    };
    if cfg.workers > 0 || !cfg.remote_addrs.is_empty() {
        eprintln!("error: exp_replay never evaluates; --workers/--remote do not apply");
        std::process::exit(2);
    }
    let repo = TrialRepo::open(&dir).unwrap_or_else(|err| {
        eprintln!("error: --trial-store {}: {err}", dir.display());
        std::process::exit(2);
    });

    let specs = cfg.specs();
    let algorithms = AlgName::ALL;
    println!(
        "== Replay: simulated search over {} datasets x 3 models x {} algorithms ==",
        specs.len(),
        algorithms.len()
    );
    println!(
        "(store {}, scale {}, budget {:?}, seed {})\n",
        dir.display(),
        cfg.scale,
        cfg.budget,
        cfg.seed
    );

    // Open and validate every (dataset, model) segment up front, so a
    // store populated under a different config fails with a per-group
    // message instead of a mid-matrix panic.
    let mut replays: BTreeMap<String, Arc<ReplayEvaluator>> = BTreeMap::new();
    for spec in &specs {
        for &model in &ModelKind::ALL {
            let context = cfg.eval_context(spec, model).canonical();
            let segment = repo.segment_path(&context);
            if !segment.exists() {
                eprintln!(
                    "error: no segment for dataset `{}` model {} (expected {}); \
                     was the store populated with this exact config?",
                    spec.name,
                    model.name(),
                    segment.display()
                );
                std::process::exit(2);
            }
            let store = repo.open_context(&context).unwrap_or_else(|err| {
                eprintln!("error: segment for `{context}`: {err}");
                std::process::exit(2);
            });
            let config = EvalConfig {
                model,
                train_fraction: 0.8,
                seed: cfg.seed,
                train_subsample: None,
            };
            let replay = ReplayEvaluator::from_store(&store, config).unwrap_or_else(|err| {
                eprintln!("error: segment for `{context}`: {err}");
                std::process::exit(2);
            });
            replays.insert(context, Arc::new(replay));
        }
    }

    let outcome = run_matrix_with(&specs, &ModelKind::ALL, &algorithms, &cfg, |d, c, _prefix| {
        let spec = spec_by_name(&d.name)
            .unwrap_or_else(|| panic!("replay needs registry dataset, got `{}`", d.name));
        let context = cfg.eval_context(&spec, c.model).canonical();
        let replay = replays.get(&context).expect("segment preopened above").clone();
        Box::new(SharedReplay(replay))
    });

    let rows: Vec<Vec<String>> = outcome
        .cells
        .iter()
        .map(|c| {
            vec![
                c.dataset.clone(),
                c.model.name().to_string(),
                c.algorithm.to_string(),
                f4(c.baseline),
                f4(c.best_accuracy),
                c.n_evals.to_string(),
                c.best_pipeline.clone(),
            ]
        })
        .collect();
    print_table(
        &["Dataset", "Model", "Algorithm", "no-FP", "Best", "Evals", "Pipeline"],
        &rows,
    );
    print_matrix_stats(&outcome);

    let (replayed, missing) = replays
        .values()
        .fold((0u64, 0u64), |(r, m), e| (r + e.replayed(), m + e.missing()));
    println!("\nreplayed {replayed} stored trials, 0 real evaluations");
    if missing > 0 {
        eprintln!(
            "warning: {missing} lookups had no stored trial (degraded to worst-error); \
             the store does not cover this config's search trajectory"
        );
        std::process::exit(1);
    }
}
