//! Run every experiment binary sequentially with quick settings.
//!
//! Usage: `cargo run --release -p autofp-bench --bin run_all [-- args...]`
//! Extra args are forwarded to every experiment (e.g. `--scale 0.05`).

use std::process::Command;

const EXPERIMENTS: [&str; 15] = [
    "exp_trend",
    "exp_patterns",
    "exp_fig5",
    "exp_table8",
    "exp_fig2",
    "exp_table2",
    "exp_table1",
    "exp_table4",
    "exp_fig6",
    "exp_fig7",
    "exp_table5",
    "exp_fig8",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################ {exp} ################\n");
        let status = Command::new(bin_dir.join(exp))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            failed.push(exp);
        }
    }
    println!("\n################ exp_deep_probe ################\n");
    let status = Command::new(bin_dir.join("exp_deep_probe"))
        .args(&forwarded)
        .status()
        .expect("failed to launch exp_deep_probe");
    if !status.success() {
        failed.push("exp_deep_probe");
    }
    if failed.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        eprintln!("\nFailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
