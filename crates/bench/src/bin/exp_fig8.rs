//! Figure 8 (and 23-25): One-step vs Two-step over the extended
//! *low-cardinality* parameter search space (Table 6), PBT underneath,
//! across increasing time limits.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_fig8
//!   [--scale S] [--budget-ms MS] [--seed X]`

use autofp_preprocess::ParamSpace;

fn main() {
    autofp_bench::extended_cmp::run("Figure 8", "low-cardinality (Table 6)", ParamSpace::low_cardinality);
    println!(
        "\nPaper's shape to match: One-step outperforms Two-step in most cells of the\n\
         low-cardinality space — it explores the 31-variant alphabet directly, while\n\
         Two-step exploits only one parameter assignment per phase."
    );
}
