//! Figure 6: Hyperband/BOHB parameter adjustment (η and min_budget)
//! versus random search, on a jasmine-like dataset with LR, across
//! increasing time limits.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_fig6
//!   [--scale S] [--budget-ms MS] [--seed X]`
//! `--budget-ms` sets the *largest* time limit of the sweep; the sweep
//! uses {1/20, 1/10, 1/4, 1/2, 1} of it (the paper sweeps 1..60 min).

use autofp_bench::{f4, print_table, HarnessConfig};
use autofp_core::{run_search, Budget, EvalConfig, Evaluator, Searcher};
use autofp_data::spec_by_name;
use autofp_models::classifier::ModelKind;
use autofp_preprocess::ParamSpace;
use autofp_search::{Bohb, Hyperband, RandomSearch};
use std::time::Duration;

fn main() {
    let cfg = HarnessConfig::from_args();
    let max_ms = match cfg.budget {
        Budget { wall_clock: Some(d), .. } => d.as_millis() as u64,
        _ => 2000,
    };
    let limits: Vec<u64> =
        [20, 10, 4, 2, 1].iter().map(|div| (max_ms / div).max(10)).collect();

    let spec = spec_by_name("jasmine").expect("registry dataset");
    let dataset = cfg.generate(&spec);
    let ev = Evaluator::new(
        &dataset,
        EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
    );
    println!("== Figure 6: Hyperband/BOHB parameter sweep vs RS (jasmine, LR) ==");
    println!("(scale {}, time limits {:?} ms)\n", cfg.scale, limits);

    // Configurations matching the paper's sweep.
    type Maker = Box<dyn Fn(u64) -> Box<dyn Searcher>>;
    let space = ParamSpace::default_space;
    let max_len = cfg.max_len;
    let configs: Vec<(String, Maker)> = vec![
        (
            "HYPERBAND eta=3 min_budget=1".into(),
            Box::new(move |s| Box::new(Hyperband::with_params(space(), max_len, s, 3.0, 1, 30))),
        ),
        (
            "HYPERBAND eta=5 min_budget=1".into(),
            Box::new(move |s| Box::new(Hyperband::with_params(space(), max_len, s, 5.0, 1, 30))),
        ),
        (
            "HYPERBAND eta=3 min_budget=8".into(),
            Box::new(move |s| Box::new(Hyperband::with_params(space(), max_len, s, 3.0, 8, 30))),
        ),
        (
            "HYPERBAND eta=3 min_budget=30".into(),
            Box::new(move |s| Box::new(Hyperband::with_params(space(), max_len, s, 3.0, 30, 30))),
        ),
        (
            "BOHB eta=3 min_budget=1".into(),
            Box::new(move |s| Box::new(Bohb::with_params(space(), max_len, s, 3.0, 1, 30))),
        ),
        (
            "BOHB eta=5 min_budget=1".into(),
            Box::new(move |s| Box::new(Bohb::with_params(space(), max_len, s, 5.0, 1, 30))),
        ),
        (
            "BOHB eta=3 min_budget=8".into(),
            Box::new(move |s| Box::new(Bohb::with_params(space(), max_len, s, 3.0, 8, 30))),
        ),
        (
            "BOHB eta=3 min_budget=30".into(),
            Box::new(move |s| Box::new(Bohb::with_params(space(), max_len, s, 3.0, 30, 30))),
        ),
        (
            "RS".into(),
            Box::new(move |s| Box::new(RandomSearch::new(space(), max_len, s))),
        ),
    ];

    let mut header = vec!["Configuration".to_string()];
    header.extend(limits.iter().map(|ms| format!("{ms} ms")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (name, maker) in &configs {
        let mut row = vec![name.clone()];
        for &ms in &limits {
            let mut searcher = maker(cfg.seed);
            let out = run_search(
                searcher.as_mut(),
                &ev,
                Budget::wall_clock(Duration::from_millis(ms)),
            );
            row.push(f4(out.best_accuracy()));
        }
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    println!("\n(no-FP baseline: {})", f4(ev.baseline_accuracy()));
    println!(
        "\nPaper's shape to match: across eta and min_budget settings, Hyperband and BOHB\n\
         rarely exceed plain RS at any time limit (Figure 6)."
    );
}
