//! Figures 17-19: the trend of best validation accuracy as the time
//! limit grows, per algorithm — "anytime" curves on a few datasets.
//!
//! Usage: `cargo run --release -p autofp-bench --bin exp_trend
//!   [--scale S] [--budget-ms MS] [--seed X]`
//! `--budget-ms` is the largest limit; the sweep uses {1/16, 1/8, 1/4,
//! 1/2, 1} of it.

use autofp_bench::{f4, print_table, HarnessConfig};
use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
use autofp_data::spec_by_name;
use autofp_models::classifier::ModelKind;
use autofp_preprocess::ParamSpace;
use autofp_search::{make_searcher, AlgName};
use std::time::Duration;

const DATASETS: [&str; 3] = ["heart", "vehicle", "jasmine"];
const ALGS: [AlgName; 6] =
    [AlgName::Rs, AlgName::Pbt, AlgName::TevoH, AlgName::Tpe, AlgName::Pmne, AlgName::Enas];

fn main() {
    let cfg = HarnessConfig::from_args();
    let max_ms = match cfg.budget {
        Budget { wall_clock: Some(d), .. } => d.as_millis() as u64,
        _ => 1600,
    };
    let limits: Vec<u64> = [16, 8, 4, 2, 1].iter().map(|div| (max_ms / div).max(10)).collect();
    println!("== Figures 17-19: accuracy trend vs time limit ==");
    println!("(scale {}, limits {:?} ms, LR downstream)\n", cfg.scale, limits);

    let mut header = vec!["Dataset".to_string(), "Algorithm".to_string()];
    header.extend(limits.iter().map(|ms| format!("{ms} ms")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut monotone_violations = 0usize;
    for name in DATASETS {
        let spec = spec_by_name(name).expect("registry");
        let dataset = cfg.generate(&spec);
        let ev = Evaluator::new(
            &dataset,
            EvalConfig { model: ModelKind::Lr, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
        );
        for alg in ALGS {
            let mut row = vec![name.to_string(), alg.as_str().to_string()];
            let mut prev = 0.0;
            for &ms in &limits {
                let mut s = make_searcher(alg, ParamSpace::default_space(), cfg.max_len, cfg.seed);
                let acc = run_search(
                    s.as_mut(),
                    &ev,
                    Budget::wall_clock(Duration::from_millis(ms)),
                )
                .best_accuracy();
                // Independent runs, so small dips are possible; count them.
                if acc + 1e-9 < prev {
                    monotone_violations += 1;
                }
                prev = acc;
                row.push(f4(acc));
            }
            rows.push(row);
        }
        rows.push(vec![
            name.to_string(),
            "(no-FP)".into(),
            f4(ev.baseline_accuracy()),
        ]);
    }
    // Pad short rows for the table printer.
    let width = header_refs.len();
    for r in &mut rows {
        while r.len() < width {
            r.push(String::new());
        }
    }
    print_table(&header_refs, &rows);
    println!("\n(curve dips across limits: {monotone_violations} — limits are independent runs)");
    println!(
        "\nPaper's shape to match (Figures 17-19): accuracy rises quickly then plateaus;\n\
         most algorithms converge to similar accuracy at large limits, differing mainly\n\
         in how fast they get there."
    );
}
