//! Table 8: feature-preprocessing capability of popular open-source
//! AutoML systems, alongside this crate's Auto-FP.
//!
//! Usage: `cargo run -p autofp-bench --bin exp_table8`

use autofp_bench::print_table;
use autofp_automl::TPOT_PREPROCESSORS;
use autofp_preprocess::{pipeline::DEFAULT_MAX_LEN, PreprocKind};

fn main() {
    println!("== Table 8: FP module capability of AutoML systems ==\n");
    let rows = vec![
        vec!["Auto-WEKA".into(), "0".into(), "0".into(), "SMAC".into()],
        vec!["Auto-Sklearn".into(), "5".into(), "1".into(), "SMAC".into()],
        vec![
            "TPOT".into(),
            TPOT_PREPROCESSORS.len().to_string(),
            "arbitrary".into(),
            "GP".into(),
        ],
        vec![
            "Auto-FP (this repo)".into(),
            PreprocKind::ALL.len().to_string(),
            format!("1..{DEFAULT_MAX_LEN}"),
            "15 algorithms".into(),
        ],
    ];
    print_table(&["AutoML System", "Preprocessors#", "Pipeline Len.", "Search Algo."], &rows);
    println!(
        "\nAuto-FP's default search space holds {} pipelines (~1M, §7.3).",
        autofp_preprocess::enumerate::total_count(7, DEFAULT_MAX_LEN)
    );
}
