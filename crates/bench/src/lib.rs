//! Shared experiment harness for the Auto-FP benchmark binaries.
//!
//! Every `exp_*` binary regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). This library holds the common
//! machinery: CLI parsing (`--scale`, `--budget-ms`, `--evals`,
//! `--seed`, `--datasets`, `--threads`, `--cache`), the scenario matrix
//! runner (dataset × model × algorithm, fanned across cells through the
//! core worker pool [`autofp_core::pool_map`], each search itself
//! single-threaded as in the paper), and table formatting.
//!
//! By default every algorithm cell of the same (dataset, model) group
//! shares one [`SharedEvalCache`], so the duplicate pipelines the 15
//! searchers propose (most start from the same default-parameter space)
//! are evaluated once per group instead of once per cell. The matrix
//! result carries aggregate [`CacheStats`] and [`FailureStats`] so the
//! reuse — and any worst-error trials — are observable in reports.

use autofp_core::{
    pool_map, run_search_with, Budget, CacheStats, EvalCache, EvalConfig, Evaluate, Evaluator,
    FailureStats, FleetStats, PhaseBreakdown, PrefixStats, RemoteEvaluator, SharedEvalCache,
    SharedPrefixCache, StoreMeta, StoreStats, TrialRepo,
};
use autofp_data::{registry, spec_by_name, Dataset, DatasetSpec};
use autofp_evald::{
    EvalContext, FleetSupervisor, SharedFleetSpec, SupervisorConfig, TcpPool, WorkerFleet,
};
use autofp_models::classifier::ModelKind;
use autofp_preprocess::ParamSpace;
use autofp_search::{make_searcher, AlgName};
use std::time::Duration;

/// How the scenario matrix caches pipeline evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// One cache per (dataset, model) group, shared by every algorithm
    /// cell and repeat of that group (the default): cross-algorithm
    /// duplicate pipelines are evaluated once per group.
    Shared,
    /// A private cache per cell (dataset × model × algorithm); repeats
    /// within the cell still share it.
    PerCell,
    /// No caching: every proposal is evaluated from scratch.
    Off,
}

/// Harness configuration shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Dataset row-count scale in `(0, 1]`.
    pub scale: f64,
    /// Per-search budget.
    pub budget: Budget,
    /// Base seed.
    pub seed: u64,
    /// Number of registry datasets to use (front of the list); `None`
    /// = all 45.
    pub n_datasets: Option<usize>,
    /// Worker threads for the scenario matrix.
    pub threads: usize,
    /// Maximum pipeline length.
    pub max_len: usize,
    /// Cap on generated rows per dataset (applied on top of `scale`);
    /// keeps the giant Table 9 datasets (covtype, christine) usable on
    /// laptop-scale budgets.
    pub max_rows: usize,
    /// Floor on generated rows per dataset (up to the dataset's real
    /// size): prevents tiny Table 9 datasets from shrinking to a handful
    /// of rows where validation accuracy is pure noise.
    pub min_rows: usize,
    /// Independent repetitions per scenario cell; accuracies are
    /// averaged (the paper repeats every experiment five times).
    pub repeats: usize,
    /// Evaluation-cache sharing across matrix cells.
    pub cache_mode: CacheMode,
    /// Optional LRU entry cap for each matrix cache; `None` = unbounded.
    pub cache_capacity: Option<usize>,
    /// Addresses of `evald` worker daemons; non-empty routes every
    /// matrix evaluation through [`RemoteEvaluator`], sharded across
    /// the fleet by the stable cache-key fingerprint.
    pub remote_addrs: Vec<String>,
    /// Number of local `evald` workers to spawn for the run (0 = none).
    /// The exp binaries spawn the fleet via [`spawn_supervised_fleet`]
    /// and hand its live membership to the matrix through `fleet_spec`.
    pub workers: usize,
    /// Live fleet membership: when set, the matrix routes over this
    /// epoch-stamped spec instead of the fixed `remote_addrs` list, so
    /// a supervisor can respawn or resize workers mid-run and clients
    /// follow along.
    pub fleet_spec: Option<SharedFleetSpec>,
    /// Maximum respawns per worker slot for a supervised `--workers`
    /// fleet.
    pub supervise_max_restarts: u32,
    /// Base respawn backoff in milliseconds for a supervised fleet
    /// (doubles per restart of the same slot, plus seeded jitter).
    pub supervise_backoff_ms: u64,
    /// Enable the prefix-transform cache ([`autofp_core::PrefixCache`]):
    /// one cache per *dataset*, shared across every model group and
    /// algorithm cell of that dataset (prefix keys exclude the model).
    /// Off by default — unlike the trial cache it holds whole dataset
    /// copies, so it is opt-in per run.
    pub prefix_cache: bool,
    /// Byte budget for each per-dataset prefix cache; `None` =
    /// unbounded. Ignored unless `prefix_cache` is on.
    pub prefix_cache_bytes: Option<u64>,
    /// Write a deterministic per-cell TSV (see [`cells_tsv`]) to this
    /// path after the matrix run — CI diffs it across cache modes to
    /// assert cell-level byte-identity.
    pub cells_out: Option<std::path::PathBuf>,
    /// Durable trial repository directory ([`TrialRepo`]): every
    /// (dataset, model) group's shared cache preloads its context
    /// segment before the run and writes finished trials through to it,
    /// so an interrupted matrix resumes from disk — the rerun evaluates
    /// only missing trials and is bit-identical to an uninterrupted
    /// cold run. Requires [`CacheMode::Shared`].
    pub trial_store: Option<std::path::PathBuf>,
}

/// Default byte budget of a per-dataset prefix cache (256 MiB):
/// generous for the scaled benchmark datasets while bounding a long
/// search over large matrices.
pub const DEFAULT_PREFIX_BYTES: u64 = autofp_core::PrefixCache::DEFAULT_BYTE_BUDGET;

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 0.05,
            budget: Budget::wall_clock(Duration::from_millis(300)),
            seed: 7,
            n_datasets: Some(12),
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            max_len: 7,
            max_rows: 1200,
            min_rows: 160,
            repeats: 1,
            cache_mode: CacheMode::Shared,
            cache_capacity: None,
            remote_addrs: Vec::new(),
            workers: 0,
            fleet_spec: None,
            supervise_max_restarts: 3,
            supervise_backoff_ms: 50,
            prefix_cache: false,
            prefix_cache_bytes: Some(DEFAULT_PREFIX_BYTES),
            cells_out: None,
            trial_store: None,
        }
    }
}

impl HarnessConfig {
    /// Parse this process's CLI arguments over the defaults (see
    /// [`HarnessConfig::try_from_arg_slice`]); invalid arguments print
    /// a one-line error and exit with status 2.
    pub fn from_args() -> HarnessConfig {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::try_from_arg_slice(&args) {
            Ok(cfg) => cfg,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`HarnessConfig::try_from_arg_slice`] that panics on invalid
    /// arguments — the test-friendly wrapper.
    pub fn from_arg_slice(args: &[String]) -> HarnessConfig {
        match Self::try_from_arg_slice(args) {
            Ok(cfg) => cfg,
            Err(msg) => panic!("{msg}"),
        }
    }

    /// Parse `--key value` style arguments over the defaults.
    ///
    /// Recognized keys: `--scale`, `--budget-ms`, `--evals`, `--seed`,
    /// `--datasets` (count or `all`), `--threads`, `--max-len`,
    /// `--cache` (`shared`/`per-cell`/`off`), `--cache-cap`,
    /// `--prefix-cache` (valueless: enables the prefix-transform
    /// cache), `--prefix-cache-bytes` (per-dataset byte budget;
    /// implies `--prefix-cache`), `--cells-out` (deterministic
    /// per-cell TSV path), `--trial-store` (durable trial repository
    /// directory; see [`HarnessConfig::trial_store`]), `--remote`
    /// (comma-separated worker addresses), `--workers` (local worker
    /// processes to spawn), `--supervise-max-restarts` /
    /// `--supervise-backoff-ms` (supervisor knobs for a `--workers`
    /// fleet).
    ///
    /// Rejected outright: an explicit `--workers 0` (a zero-worker
    /// fleet can serve nothing — omit the flag for an in-process run),
    /// `--remote` addresses that are not unique `host:port` pairs with
    /// a nonzero port, `--workers` combined with `--remote` (spawn
    /// a local fleet *or* point at an existing one, not both), and
    /// `--trial-store` without [`CacheMode::Shared`] (the durable
    /// layer preloads and writes through the per-group shared caches,
    /// so there is nothing to attach it to under `per-cell` or `off`).
    ///
    /// `--cache-cap 0` with a caching mode is contradictory (every
    /// insert would be evicted immediately, paying lock traffic for
    /// zero reuse), so it downgrades to `--cache off` with a warning;
    /// `--prefix-cache-bytes 0` likewise disables the prefix cache.
    pub fn try_from_arg_slice(args: &[String]) -> Result<HarnessConfig, String> {
        fn num<T: std::str::FromStr>(val: &str, what: &str) -> Result<T, String> {
            val.parse().map_err(|_| format!("{what}, got `{val}`"))
        }
        let mut cfg = HarnessConfig::default();
        let mut i = 0;
        while i < args.len() {
            let key = args[i].as_str();
            // `--prefix-cache` is the one valueless flag.
            if key == "--prefix-cache" {
                cfg.prefix_cache = true;
                i += 1;
                continue;
            }
            let val = args.get(i + 1).cloned().unwrap_or_default();
            match key {
                "--scale" => cfg.scale = num(&val, "--scale takes a float")?,
                "--budget-ms" => {
                    let ms: u64 = num(&val, "--budget-ms takes an integer")?;
                    cfg.budget = Budget::wall_clock(Duration::from_millis(ms));
                }
                "--evals" => {
                    let n: usize = num(&val, "--evals takes an integer")?;
                    cfg.budget = Budget::evals(n);
                }
                "--seed" => cfg.seed = num(&val, "--seed takes an integer")?,
                "--datasets" => {
                    cfg.n_datasets = if val == "all" {
                        None
                    } else {
                        Some(num(&val, "--datasets takes a count or `all`")?)
                    };
                }
                "--threads" => cfg.threads = num(&val, "--threads takes an integer")?,
                "--max-len" => cfg.max_len = num(&val, "--max-len takes an integer")?,
                "--max-rows" => cfg.max_rows = num(&val, "--max-rows takes an integer")?,
                "--min-rows" => cfg.min_rows = num(&val, "--min-rows takes an integer")?,
                "--repeats" => cfg.repeats = num(&val, "--repeats takes an integer")?,
                "--cache" => {
                    cfg.cache_mode = match val.as_str() {
                        "shared" => CacheMode::Shared,
                        "per-cell" => CacheMode::PerCell,
                        "off" => CacheMode::Off,
                        other => return Err(format!("--cache takes shared|per-cell|off, got {other}")),
                    };
                }
                "--cache-cap" => {
                    cfg.cache_capacity = Some(num(&val, "--cache-cap takes an integer")?);
                }
                "--prefix-cache-bytes" => {
                    let bytes: u64 = num(&val, "--prefix-cache-bytes takes an integer")?;
                    cfg.prefix_cache_bytes = Some(bytes);
                    cfg.prefix_cache = true;
                }
                "--cells-out" => cfg.cells_out = Some(val.clone().into()),
                "--trial-store" => {
                    if val.is_empty() {
                        return Err("--trial-store needs a directory path".into());
                    }
                    cfg.trial_store = Some(val.clone().into());
                }
                "--remote" => {
                    let addrs: Vec<String> =
                        val.split(',').filter(|s| !s.is_empty()).map(String::from).collect();
                    if addrs.is_empty() {
                        return Err("--remote needs at least one host:port address".into());
                    }
                    for (idx, addr) in addrs.iter().enumerate() {
                        let well_formed = addr.rsplit_once(':').is_some_and(|(host, port)| {
                            !host.is_empty() && port.parse::<u16>().is_ok_and(|p| p != 0)
                        });
                        if !well_formed {
                            return Err(format!(
                                "--remote address `{addr}` is not `host:port` with a nonzero port"
                            ));
                        }
                        if addrs[..idx].contains(addr) {
                            return Err(format!(
                                "--remote lists `{addr}` more than once; \
                                 each worker address must be unique"
                            ));
                        }
                    }
                    cfg.remote_addrs = addrs;
                }
                "--workers" => {
                    let n: usize = num(&val, "--workers takes an integer")?;
                    if n == 0 {
                        return Err(
                            "--workers 0 would spawn an empty fleet; \
                             omit --workers for an in-process run"
                                .into(),
                        );
                    }
                    cfg.workers = n;
                }
                "--supervise-max-restarts" => {
                    cfg.supervise_max_restarts =
                        num(&val, "--supervise-max-restarts takes an integer")?;
                }
                "--supervise-backoff-ms" => {
                    cfg.supervise_backoff_ms =
                        num(&val, "--supervise-backoff-ms takes an integer")?;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
            i += 2;
        }
        if cfg.workers > 0 && !cfg.remote_addrs.is_empty() {
            return Err(
                "--workers spawns a local fleet and --remote points at an existing one; \
                 pass only one of them"
                    .into(),
            );
        }
        if cfg.cache_capacity == Some(0) && cfg.cache_mode != CacheMode::Off {
            eprintln!(
                "warning: --cache-cap 0 makes every cache insert evict immediately; \
                 downgrading to --cache off"
            );
            cfg.cache_mode = CacheMode::Off;
        }
        if cfg.prefix_cache_bytes == Some(0) && cfg.prefix_cache {
            eprintln!(
                "warning: --prefix-cache-bytes 0 admits nothing; disabling the prefix cache"
            );
            cfg.prefix_cache = false;
        }
        if cfg.trial_store.is_some() && cfg.cache_mode != CacheMode::Shared {
            return Err(
                "--trial-store preloads and writes through the per-group shared caches; \
                 it requires --cache shared"
                    .into(),
            );
        }
        Ok(cfg)
    }

    /// The [`SupervisorConfig`] a `--workers` fleet should run with,
    /// built from the `--supervise-*` knobs over supervisor defaults.
    pub fn supervisor_config(&self) -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: self.supervise_max_restarts,
            backoff: Duration::from_millis(self.supervise_backoff_ms),
            ..SupervisorConfig::default()
        }
    }

    /// The dataset specs this run covers.
    pub fn specs(&self) -> Vec<DatasetSpec> {
        let mut specs = registry();
        if let Some(n) = self.n_datasets {
            specs.truncate(n);
        }
        specs
    }

    /// The scale a dataset is actually generated at: `scale` tightened
    /// by the `max_rows` cap and lifted by the `min_rows` floor.
    ///
    /// Remote workers regenerate datasets from (name, scale) alone, so
    /// this must be the *exact* value [`HarnessConfig::generate`] uses —
    /// both call this one function.
    pub fn effective_scale(&self, spec: &DatasetSpec) -> f64 {
        let cap_scale = self.max_rows as f64 / spec.rows as f64;
        let floor_scale = self.min_rows as f64 / spec.rows as f64;
        let scale = self.scale.min(cap_scale).max(floor_scale);
        scale.clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Generate a dataset at this config's scale, additionally capped at
    /// `max_rows` rows (the cap tightens the effective scale rather than
    /// subsampling after the fact, so generation stays cheap).
    pub fn generate(&self, spec: &DatasetSpec) -> Dataset {
        spec.generate(self.effective_scale(spec))
    }

    /// A fresh cache honoring `cache_capacity`.
    pub fn new_cache(&self) -> EvalCache {
        match self.cache_capacity {
            Some(cap) => EvalCache::with_capacity(cap),
            None => EvalCache::new(),
        }
    }

    /// A fresh shareable cache honoring `cache_capacity`.
    pub fn new_shared_cache(&self) -> SharedEvalCache {
        match self.cache_capacity {
            Some(cap) => SharedEvalCache::with_capacity(cap),
            None => SharedEvalCache::new(),
        }
    }

    /// A fresh shareable prefix-transform cache honoring
    /// `prefix_cache_bytes`.
    pub fn new_prefix_cache(&self) -> SharedPrefixCache {
        match self.prefix_cache_bytes {
            Some(budget) => SharedPrefixCache::with_byte_budget(budget),
            None => SharedPrefixCache::new(),
        }
    }

    /// The evaluation-context identity of a (dataset, model) matrix
    /// group: exactly what a remote `evald` worker materializes for it.
    /// Its [`EvalContext::canonical`] string doubles as the
    /// [`TrialRepo`] segment key, so local, remote, and replay runs
    /// over the same config share one on-disk trial identity.
    pub fn eval_context(&self, spec: &DatasetSpec, model: ModelKind) -> EvalContext {
        EvalContext {
            dataset: spec.name.to_string(),
            scale: self.effective_scale(spec),
            model,
            train_fraction: 0.8,
            seed: self.seed,
            train_subsample: None,
        }
    }
}

/// Result of one scenario cell (dataset × model × algorithm).
#[derive(Debug, Clone)]
pub struct CellResult {
    pub dataset: String,
    pub model: ModelKind,
    pub algorithm: &'static str,
    pub baseline: f64,
    pub best_accuracy: f64,
    pub n_evals: usize,
    pub breakdown: PhaseBreakdown,
    pub best_pipeline: String,
    /// Worst-error trials this cell hit, tallied across all repeats.
    pub failures: FailureStats,
}

impl CellResult {
    /// Improvement over the no-FP baseline, in percentage points (the
    /// unit of the paper's Tables 12-15).
    pub fn improvement_pp(&self) -> f64 {
        ((self.best_accuracy - self.baseline) * 100.0).max(0.0)
    }
}

/// A full scenario-matrix run: per-cell results plus matrix-level
/// aggregate cache and failure tallies.
///
/// `cells` is deterministically ordered (dataset, model, algorithm) and
/// bit-identical across worker-thread counts and cache modes; `cache`
/// counters depend on cell scheduling under [`CacheMode::Shared`] (who
/// hits and who misses races), so only the *results* are reproducible,
/// not the hit/miss split.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// One entry per (dataset, model, algorithm) cell, sorted.
    pub cells: Vec<CellResult>,
    /// Cache counters folded over every cache the matrix created.
    pub cache: CacheStats,
    /// Prefix-transform cache counters folded over the per-dataset
    /// prefix caches (all zero when `prefix_cache` was off).
    pub prefix: PrefixStats,
    /// Failure tallies folded over every cell and repeat.
    pub failures: FailureStats,
    /// Fleet robustness counters (reconnects, retries, failovers,
    /// circuit-opens, respawns) from the shared remote pool; `None`
    /// for in-process runs. Deliberately excluded from [`cells_tsv`]:
    /// how the fleet healed is nondeterministic, what it computed is
    /// not.
    pub fleet: Option<FleetStats>,
    /// Durable trial-store counters folded over every context segment
    /// the run opened; `None` without `--trial-store`. Excluded from
    /// [`cells_tsv`] for the same reason as cache counters: how many
    /// trials were preloaded vs appended depends on what a previous
    /// (possibly interrupted) run persisted, while the cell results do
    /// not.
    pub store: Option<StoreStats>,
}

/// Per-socket-operation timeout for remote evaluations. Generous: a
/// slow evaluation must not be misread as a dead worker, while a dead
/// worker fails fast anyway (connection refused is immediate).
const REMOTE_TIMEOUT: Duration = Duration::from_secs(60);

/// Run `algorithms` on every (dataset, model) pair, fanned across cells
/// through the core worker pool; each search is single-threaded (paper:
/// `n_jobs = 1`).
///
/// With `config.remote_addrs` non-empty, every evaluator is a
/// [`RemoteEvaluator`] sharding requests over the `evald` fleet;
/// workers regenerate the named dataset at the same effective scale, so
/// results are bit-identical to an in-process run (pinned by
/// `tests/distributed.rs`).
pub fn run_matrix(
    specs: &[DatasetSpec],
    models: &[ModelKind],
    algorithms: &[AlgName],
    config: &HarnessConfig,
) -> MatrixOutcome {
    if config.remote_addrs.is_empty() && config.fleet_spec.is_none() {
        run_matrix_with(specs, models, algorithms, config, |d, c, prefix| {
            let mut ev = Evaluator::new(d, c);
            if let Some(cache) = prefix {
                ev = ev.with_prefix_cache(cache.clone());
            }
            Box::new(ev)
        })
    } else {
        // One pool for the whole matrix: every (dataset, model) group's
        // backend shares its connections, circuit breakers, and fleet
        // membership, so a supervisor's epoch bumps reach all of them.
        let fleet = match &config.fleet_spec {
            Some(spec) => spec.clone(),
            None => SharedFleetSpec::fixed(config.remote_addrs.clone()),
        };
        let pool = TcpPool::new(fleet, REMOTE_TIMEOUT);
        let factory_pool = pool.clone();
        // Remote evaluation ignores the harness prefix cache: the
        // workers own per-context prefix caches on their side.
        let mut outcome =
            run_matrix_with(specs, models, algorithms, config, move |d, c, _prefix| {
                let spec = spec_by_name(&d.name).unwrap_or_else(|| {
                    panic!("remote mode needs registry dataset, got `{}`", d.name)
                });
                let ctx = EvalContext {
                    dataset: d.name.clone(),
                    scale: config.effective_scale(&spec),
                    model: c.model,
                    train_fraction: c.train_fraction,
                    seed: c.seed,
                    train_subsample: c.train_subsample.map(|v| v as u64),
                };
                Box::new(RemoteEvaluator::new(Box::new(factory_pool.backend(ctx)), c))
            });
        outcome.fleet = Some(pool.fleet_stats());
        outcome
    }
}

/// Locate the `evald` worker binary: the `EVALD_BIN` environment
/// variable when set, else a sibling of the current executable (all
/// workspace binaries land in the same target directory).
pub fn evald_binary() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("EVALD_BIN") {
        return path.into();
    }
    let exe = std::env::current_exe().unwrap_or_default();
    let dir = exe.parent().unwrap_or_else(|| std::path::Path::new("."));
    dir.join(format!("evald{}", std::env::consts::EXE_SUFFIX))
}

/// Spawn `n` local `evald` workers (see [`evald_binary`]) with fixed
/// membership — no health checks, no respawn. The fleet shuts its
/// children down on drop; keep it alive for the whole matrix run.
pub fn spawn_local_workers(n: usize) -> std::io::Result<WorkerFleet> {
    WorkerFleet::spawn(&evald_binary(), n)
}

/// Spawn `n` supervised local `evald` workers (see [`evald_binary`])
/// for a `--workers N` run: the returned [`FleetSupervisor`] owns the
/// children, and its [`FleetSupervisor::monitor`] loop respawns dead
/// ones and republishes membership. Route the matrix over its live
/// spec by putting [`FleetSupervisor::fleet`] into
/// [`HarnessConfig::fleet_spec`].
pub fn spawn_supervised_fleet(
    n: usize,
    config: SupervisorConfig,
) -> std::io::Result<FleetSupervisor> {
    FleetSupervisor::spawn(&evald_binary(), n, config)
}

/// [`run_matrix`] with a custom evaluator factory: `make_eval` builds
/// the evaluator for each (dataset, model) group, letting tests wrap
/// the real [`Evaluator`] (fault injection, instrumentation) without a
/// parallel harness implementation. The factory's third argument is
/// the dataset's shared prefix cache when `config.prefix_cache` is on
/// (attach it with [`Evaluator::with_prefix_cache`]); factories that
/// ignore it simply run without prefix reuse.
pub fn run_matrix_with<F>(
    specs: &[DatasetSpec],
    models: &[ModelKind],
    algorithms: &[AlgName],
    config: &HarnessConfig,
    make_eval: F,
) -> MatrixOutcome
where
    F: Fn(&Dataset, EvalConfig, Option<&SharedPrefixCache>) -> Box<dyn Evaluate> + Sync,
{
    // Generate datasets once, share across threads.
    let datasets: Vec<Dataset> = specs.iter().map(|s| config.generate(s)).collect();

    // One prefix cache per dataset, shared across every model group:
    // prefix keys exclude the model, so LR/XGB/MLP cells over one
    // dataset reuse each other's transform states.
    let prefix_caches: Option<Vec<SharedPrefixCache>> = config
        .prefix_cache
        .then(|| datasets.iter().map(|_| config.new_prefix_cache()).collect());

    // Work items: (dataset index, model, algorithm).
    let mut cells: Vec<(usize, ModelKind, AlgName)> = Vec::new();
    for (di, _) in datasets.iter().enumerate() {
        for &m in models {
            for &a in algorithms {
                cells.push((di, m, a));
            }
        }
    }

    // Evaluators are built once per (dataset, model) to share the
    // baseline measurement across algorithms; under `CacheMode::Shared`
    // the group also owns the cache all of its cells reuse.
    let evaluators: Vec<Vec<Box<dyn Evaluate>>> = datasets
        .iter()
        .enumerate()
        .map(|(di, d)| {
            models
                .iter()
                .map(|&m| {
                    make_eval(
                        d,
                        EvalConfig {
                            model: m,
                            train_fraction: 0.8,
                            seed: config.seed,
                            train_subsample: None,
                        },
                        prefix_caches.as_ref().map(|caches| &caches[di]),
                    )
                })
                .collect()
        })
        .collect();
    let group_caches: Vec<Vec<SharedEvalCache>> = if config.cache_mode == CacheMode::Shared {
        datasets
            .iter()
            .map(|_| models.iter().map(|_| config.new_shared_cache()).collect())
            .collect()
    } else {
        Vec::new()
    };

    // Durable layer: one on-disk segment per (dataset, model) group,
    // preloaded into the group's shared cache before any cell runs and
    // attached so finished trials write through. A store open failure
    // is fatal — silently running without persistence would break the
    // resume guarantee the caller asked for.
    let trial_repo: Option<TrialRepo> = config.trial_store.as_ref().map(|dir| {
        assert_eq!(
            config.cache_mode,
            CacheMode::Shared,
            "trial_store requires CacheMode::Shared (it rides the group caches)"
        );
        TrialRepo::open(dir)
            .unwrap_or_else(|err| panic!("--trial-store {}: {err}", dir.display()))
    });
    if let Some(repo) = &trial_repo {
        for (di, spec) in specs.iter().enumerate() {
            for (mi, &m) in models.iter().enumerate() {
                let context = config.eval_context(spec, m).canonical();
                let store = repo.open_context(&context).unwrap_or_else(|err| {
                    panic!("--trial-store segment for `{context}`: {err}")
                });
                let evaluator = evaluators[di][mi].as_ref();
                store
                    .set_meta(StoreMeta {
                        baseline_accuracy: evaluator.baseline_accuracy(),
                        train_rows: evaluator.train_rows() as u64,
                    })
                    .unwrap_or_else(|err| {
                        panic!("--trial-store segment for `{context}`: {err}")
                    });
                group_caches[di][mi].preload_from(&store);
                group_caches[di][mi].attach_store(store);
            }
        }
    }
    let model_index = |m: ModelKind| models.iter().position(|&x| x == m).expect("model listed");

    let outputs: Vec<(CellResult, Option<CacheStats>)> =
        pool_map(config.threads.max(1), cells.len(), |i| {
            let (di, model, alg) = cells[i];
            let mi = model_index(model);
            let evaluator = evaluators[di][mi].as_ref();
            let cell_cache = match config.cache_mode {
                CacheMode::PerCell => Some(config.new_cache()),
                _ => None,
            };
            let cache: Option<&EvalCache> = match config.cache_mode {
                CacheMode::Shared => Some(&group_caches[di][mi]),
                CacheMode::PerCell => cell_cache.as_ref(),
                CacheMode::Off => None,
            };
            // Repeat with derived seeds and average the best accuracy
            // (the paper repeats five times and reports the average).
            let mut acc_sum = 0.0;
            let mut evals_sum = 0;
            let mut failures = FailureStats::new();
            let mut first: Option<autofp_core::SearchOutcome> = None;
            for rep in 0..config.repeats.max(1) {
                let seed = autofp_linalg::rng::derive_seed(
                    config.seed,
                    (i as u64) * 31 + rep as u64,
                );
                let mut searcher =
                    make_searcher(alg, ParamSpace::default_space(), config.max_len, seed);
                let outcome =
                    run_search_with(searcher.as_mut(), evaluator, config.budget, Some(1), cache);
                acc_sum += outcome.best_accuracy();
                evals_sum += outcome.history.len();
                failures.absorb(&outcome.failures);
                if first.is_none() {
                    first = Some(outcome);
                }
            }
            let reps = config.repeats.max(1);
            let outcome = first.expect("at least one repeat ran");
            let cell = CellResult {
                dataset: datasets[di].name.clone(),
                model,
                algorithm: alg.as_str(),
                baseline: evaluator.baseline_accuracy(),
                best_accuracy: acc_sum / reps as f64,
                n_evals: evals_sum / reps,
                breakdown: outcome.breakdown,
                best_pipeline: outcome
                    .best()
                    .map(|t| t.pipeline.to_string())
                    .unwrap_or_else(|| "(none)".into()),
                failures,
            };
            (cell, cell_cache.map(|c| c.stats()))
        });

    let mut cache = CacheStats::default();
    let mut failures = FailureStats::new();
    let mut out = Vec::with_capacity(outputs.len());
    for (cell, per_cell_stats) in outputs {
        failures.absorb(&cell.failures);
        if let Some(stats) = per_cell_stats {
            cache.absorb(&stats);
        }
        out.push(cell);
    }
    // Each shared group cache is absorbed exactly once, after every cell
    // that touched it has finished.
    for group in &group_caches {
        for shared in group {
            cache.absorb(&shared.stats());
        }
    }
    // Likewise each per-dataset prefix cache, exactly once.
    let mut prefix = PrefixStats::default();
    for shared in prefix_caches.iter().flatten() {
        prefix.absorb(&shared.stats());
    }

    out.sort_by(|a, b| {
        (a.dataset.clone(), a.model.name(), a.algorithm)
            .cmp(&(b.dataset.clone(), b.model.name(), b.algorithm))
    });
    // Store counters are read once, after every cell's write-throughs
    // have landed.
    let store = trial_repo.as_ref().map(TrialRepo::stats);
    let outcome = MatrixOutcome { cells: out, cache, prefix, failures, fleet: None, store };
    if let Some(path) = &config.cells_out {
        if let Err(err) = std::fs::write(path, cells_tsv(&outcome)) {
            eprintln!("warning: could not write --cells-out {}: {err}", path.display());
        }
    }
    outcome
}

/// Serialize everything deterministic about a matrix run as TSV: cell
/// identity, f64 *bit patterns* for baseline and best accuracy, eval
/// counts, winning pipelines, and failure tallies. Cache counters and
/// wall-clock fields are deliberately excluded (hit/miss splits race
/// under shared caches; timings are nondeterministic), so two runs of
/// the same matrix config are byte-identical across thread counts,
/// cache modes, and prefix-cache settings — CI diffs this artifact to
/// pin cell-level byte-identity.
pub fn cells_tsv(outcome: &MatrixOutcome) -> String {
    use autofp_core::FailureKind;
    use std::fmt::Write as _;
    let mut s = String::from(
        "dataset\tmodel\talgorithm\tbaseline_bits\tbest_accuracy_bits\tn_evals\tbest_pipeline\tfailures\n",
    );
    for c in &outcome.cells {
        let failures: Vec<String> = FailureKind::ALL
            .iter()
            .map(|&k| format!("{}={}", k.name(), c.failures.count(k)))
            .collect();
        let _ = writeln!(
            s,
            "{}\t{}\t{}\t{:016x}\t{:016x}\t{}\t{}\t{}",
            c.dataset,
            c.model.name(),
            c.algorithm,
            c.baseline.to_bits(),
            c.best_accuracy.to_bits(),
            c.n_evals,
            c.best_pipeline,
            failures.join(","),
        );
    }
    s
}

/// Print a fixed-width table: a header row and data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:<w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Print a matrix run's aggregate cache/failure stats block (rendered by
/// [`autofp_core::report::matrix_stats_markdown`]) under a results table.
pub fn print_matrix_stats(outcome: &MatrixOutcome) {
    println!();
    let prefix = (outcome.prefix.lookups() > 0).then_some(&outcome.prefix);
    print!(
        "{}",
        autofp_core::report::matrix_stats_markdown(
            &outcome.cache,
            prefix,
            outcome.store.as_ref(),
            &outcome.failures,
        )
    );
    if let Some(fleet) = &outcome.fleet {
        println!();
        print!("{}", autofp_core::report::fleet_stats_markdown(fleet));
    }
}

/// Format a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_slice_parses_remote_and_worker_flags() {
        let cfg = HarnessConfig::from_arg_slice(&argv(&[
            "--remote",
            "127.0.0.1:4000,127.0.0.1:4001",
            "--cache-cap",
            "64",
        ]));
        assert_eq!(cfg.remote_addrs, vec!["127.0.0.1:4000", "127.0.0.1:4001"]);
        assert_eq!(cfg.cache_capacity, Some(64));
        assert_eq!(cfg.cache_mode, CacheMode::Shared, "nonzero cap keeps caching on");
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--workers", "2"]));
        assert_eq!(cfg.workers, 2);
        assert!(cfg.remote_addrs.is_empty());
    }

    #[test]
    fn invalid_worker_and_remote_combinations_are_rejected() {
        // An explicit zero-worker fleet is an error, not a silent no-op.
        let err = HarnessConfig::try_from_arg_slice(&argv(&["--workers", "0"])).unwrap_err();
        assert!(err.contains("--workers 0"), "{err}");
        // Spawning a fleet and pointing at an existing one conflict.
        let err = HarnessConfig::try_from_arg_slice(&argv(&[
            "--workers",
            "2",
            "--remote",
            "127.0.0.1:4000",
        ]))
        .unwrap_err();
        assert!(err.contains("only one"), "{err}");
        // Duplicate worker addresses would double-count a shard.
        let err = HarnessConfig::try_from_arg_slice(&argv(&[
            "--remote",
            "127.0.0.1:4000,127.0.0.1:4000",
        ]))
        .unwrap_err();
        assert!(err.contains("unique"), "{err}");
        // Malformed addresses: no port, empty host, non-numeric or
        // out-of-range or zero port.
        for bad in ["localhost", ":4000", "h:port", "h:0", "h:70000", ""] {
            let args = argv(&["--remote", bad]);
            assert!(HarnessConfig::try_from_arg_slice(&args).is_err(), "accepted `{bad}`");
        }
        // Unknown flags and unparsable values surface as errors too.
        assert!(HarnessConfig::try_from_arg_slice(&argv(&["--bogus", "1"])).is_err());
        assert!(HarnessConfig::try_from_arg_slice(&argv(&["--workers", "many"])).is_err());
    }

    #[test]
    fn supervise_knobs_parse_into_the_supervisor_config() {
        let cfg = HarnessConfig::from_arg_slice(&argv(&[
            "--workers",
            "2",
            "--supervise-max-restarts",
            "5",
            "--supervise-backoff-ms",
            "20",
        ]));
        assert_eq!(cfg.supervise_max_restarts, 5);
        assert_eq!(cfg.supervise_backoff_ms, 20);
        let sup = cfg.supervisor_config();
        assert_eq!(sup.max_restarts, 5);
        assert_eq!(sup.backoff, Duration::from_millis(20));
        // Defaults flow through unchanged.
        let defaults = HarnessConfig::default().supervisor_config();
        assert_eq!(defaults.max_restarts, 3);
        assert_eq!(defaults.backoff, Duration::from_millis(50));
    }

    #[test]
    fn trial_store_flag_parses_and_requires_shared_cache() {
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--trial-store", "/tmp/afp-repo"]));
        assert_eq!(cfg.trial_store.as_deref(), Some(std::path::Path::new("/tmp/afp-repo")));
        assert_eq!(cfg.cache_mode, CacheMode::Shared);
        // The durable layer rides the per-group shared caches; other
        // cache modes have nothing to attach it to.
        for mode in ["per-cell", "off"] {
            let err = HarnessConfig::try_from_arg_slice(&argv(&[
                "--trial-store",
                "/tmp/afp-repo",
                "--cache",
                mode,
            ]))
            .unwrap_err();
            assert!(err.contains("--cache shared"), "{err}");
        }
        // `--cache-cap 0` downgrades to `--cache off`, which conflicts
        // the same way.
        let err = HarnessConfig::try_from_arg_slice(&argv(&[
            "--trial-store",
            "/tmp/afp-repo",
            "--cache-cap",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("--cache shared"), "{err}");
        // A missing value is an error, not an empty path.
        assert!(HarnessConfig::try_from_arg_slice(&argv(&["--trial-store"])).is_err());
    }

    #[test]
    fn eval_context_matches_the_remote_identity() {
        let cfg = HarnessConfig::default();
        let spec = registry().into_iter().next().unwrap();
        let ctx = cfg.eval_context(&spec, ModelKind::Lr);
        assert_eq!(ctx.dataset, spec.name);
        assert_eq!(ctx.scale, cfg.effective_scale(&spec));
        assert_eq!(ctx.train_fraction, 0.8);
        assert_eq!(ctx.seed, cfg.seed);
        assert_eq!(ctx.train_subsample, None);
        // The canonical string is the repo segment key: stable per
        // config, distinct per model.
        assert_ne!(
            cfg.eval_context(&spec, ModelKind::Lr).canonical(),
            cfg.eval_context(&spec, ModelKind::Xgb).canonical()
        );
    }

    #[test]
    fn cache_cap_zero_downgrades_shared_cache_to_off() {
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--cache-cap", "0", "--cache", "shared"]));
        assert_eq!(cfg.cache_capacity, Some(0));
        assert_eq!(cfg.cache_mode, CacheMode::Off);
        // Per-cell caching is downgraded the same way...
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--cache", "per-cell", "--cache-cap", "0"]));
        assert_eq!(cfg.cache_mode, CacheMode::Off);
        // ...and an explicit `--cache off` with cap 0 is already consistent.
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--cache", "off", "--cache-cap", "0"]));
        assert_eq!(cfg.cache_mode, CacheMode::Off);
    }

    #[test]
    fn effective_scale_matches_generate() {
        let mut cfg = HarnessConfig::default();
        cfg.scale = 0.01;
        cfg.min_rows = 150;
        cfg.max_rows = 500;
        for spec in cfg.specs() {
            let scale = cfg.effective_scale(&spec);
            assert_eq!(cfg.generate(&spec).n_rows(), spec.generate(scale).n_rows(), "{}", spec.name);
        }
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = HarnessConfig::default();
        assert!(cfg.scale > 0.0 && cfg.scale <= 1.0);
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.specs().len(), 12);
        assert_eq!(cfg.cache_mode, CacheMode::Shared);
    }

    #[test]
    fn matrix_runs_small_grid() {
        let mut cfg = HarnessConfig::default();
        cfg.scale = 0.2;
        cfg.budget = Budget::evals(4);
        cfg.threads = 2;
        let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
        let outcome = run_matrix(
            &specs,
            &[ModelKind::Lr],
            &[AlgName::Rs, AlgName::TevoH],
            &cfg,
        );
        assert_eq!(outcome.cells.len(), 4);
        for r in &outcome.cells {
            assert_eq!(r.n_evals, 4);
            assert!((0.0..=1.0).contains(&r.best_accuracy));
            assert!(r.best_accuracy >= 0.0);
        }
        // Baselines agree across algorithms of the same cell pair.
        assert_eq!(outcome.cells[0].baseline, outcome.cells[1].baseline);
        // Every evaluation went through the shared caches.
        assert_eq!(outcome.cache.lookups(), 16);
    }

    #[test]
    fn cache_modes_agree_on_results() {
        let mut cfg = HarnessConfig::default();
        cfg.scale = 0.2;
        cfg.budget = Budget::evals(4);
        cfg.threads = 2;
        let specs: Vec<DatasetSpec> = registry().into_iter().take(1).collect();
        let models = [ModelKind::Lr];
        let algs = [AlgName::Rs, AlgName::TevoH];
        let shared = run_matrix(&specs, &models, &algs, &cfg);
        cfg.cache_mode = CacheMode::Off;
        let off = run_matrix(&specs, &models, &algs, &cfg);
        assert_eq!(shared.cells.len(), off.cells.len());
        for (a, b) in shared.cells.iter().zip(&off.cells) {
            assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
            assert_eq!(a.best_pipeline, b.best_pipeline);
        }
        assert_eq!(off.cache.lookups(), 0, "CacheMode::Off performs no lookups");
    }

    #[test]
    fn generate_respects_floor_and_cap() {
        let mut cfg = HarnessConfig::default();
        cfg.scale = 0.01;
        cfg.min_rows = 150;
        cfg.max_rows = 500;
        let specs = registry();
        let tiny = specs.iter().find(|s| s.name == "heart").unwrap(); // 242 rows
        let big = specs.iter().find(|s| s.name == "covtype").unwrap(); // 464809 rows
        // Floor: heart at scale 0.01 would be 2 rows; floor lifts it to 150.
        assert_eq!(cfg.generate(tiny).n_rows(), 150);
        // covtype at 0.01 would be 4648; cap brings it to 500.
        assert_eq!(cfg.generate(big).n_rows(), 500);
        // Floor can never exceed the dataset's true size.
        cfg.min_rows = 10_000;
        assert_eq!(cfg.generate(tiny).n_rows(), 242);
    }

    #[test]
    fn repeats_average_accuracies() {
        let mut cfg = HarnessConfig::default();
        cfg.scale = 0.5;
        cfg.budget = Budget::evals(3);
        cfg.repeats = 2;
        cfg.threads = 1;
        let specs: Vec<DatasetSpec> = registry().into_iter().take(1).collect();
        let outcome = run_matrix(&specs, &[ModelKind::Lr], &[AlgName::Rs], &cfg);
        assert_eq!(outcome.cells.len(), 1);
        // n_evals reports the per-repeat average.
        assert_eq!(outcome.cells[0].n_evals, 3);
    }

    #[test]
    fn prefix_cache_flags_parse() {
        // `--prefix-cache` is the one valueless flag the parser accepts.
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--prefix-cache"]));
        assert!(cfg.prefix_cache);
        assert_eq!(cfg.prefix_cache_bytes, Some(DEFAULT_PREFIX_BYTES));
        // An explicit byte budget implies the cache is on.
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--prefix-cache-bytes", "1048576"]));
        assert!(cfg.prefix_cache);
        assert_eq!(cfg.prefix_cache_bytes, Some(1 << 20));
        // A zero budget downgrades to off, mirroring `--cache-cap 0`.
        let cfg = HarnessConfig::from_arg_slice(&argv(&["--prefix-cache", "--prefix-cache-bytes", "0"]));
        assert!(!cfg.prefix_cache);
        // The flag composes with ordinary `--key value` pairs on either side.
        let cfg = HarnessConfig::from_arg_slice(&argv(&[
            "--workers",
            "2",
            "--prefix-cache",
            "--cells-out",
            "/tmp/cells.tsv",
        ]));
        assert!(cfg.prefix_cache);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.cells_out.as_deref(), Some(std::path::Path::new("/tmp/cells.tsv")));
    }

    #[test]
    fn prefix_cache_matrix_is_bit_identical_and_saves_steps() {
        let mut cfg = HarnessConfig::default();
        cfg.scale = 0.2;
        cfg.budget = Budget::evals(6);
        cfg.threads = 2;
        let specs: Vec<DatasetSpec> = registry().into_iter().take(2).collect();
        let models = [ModelKind::Lr, ModelKind::Xgb];
        let algs = [AlgName::Rs, AlgName::Pmne];
        let plain = run_matrix(&specs, &models, &algs, &cfg);
        assert_eq!(plain.prefix.lookups(), 0, "prefix cache is opt-in");
        cfg.prefix_cache = true;
        let cached = run_matrix(&specs, &models, &algs, &cfg);
        assert_eq!(plain.cells.len(), cached.cells.len());
        for (a, b) in plain.cells.iter().zip(&cached.cells) {
            assert_eq!(a.baseline.to_bits(), b.baseline.to_bits());
            assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits(), "{}", a.dataset);
            assert_eq!(a.best_pipeline, b.best_pipeline);
            assert_eq!(a.n_evals, b.n_evals);
        }
        assert!(cached.prefix.lookups() > 0, "every non-empty pipeline probes the cache");
        assert!(cached.prefix.hits > 0, "searchers revisit shared prefixes even at tiny budgets");
        assert!(cached.prefix.steps_saved > 0, "hits skip at least their prefix depth in steps");
        // The deterministic cell serialization cannot tell the two runs apart.
        assert_eq!(cells_tsv(&plain), cells_tsv(&cached));
    }

    #[test]
    fn improvement_is_nonnegative() {
        let r = CellResult {
            dataset: "x".into(),
            model: ModelKind::Lr,
            algorithm: "RS",
            baseline: 0.9,
            best_accuracy: 0.85,
            n_evals: 1,
            breakdown: PhaseBreakdown {
                pick: Duration::ZERO,
                prep: Duration::ZERO,
                train: Duration::ZERO,
            },
            best_pipeline: String::new(),
            failures: FailureStats::new(),
        };
        assert_eq!(r.improvement_pp(), 0.0);
    }
}

/// Shared driver for the Figure 8/9 One-step vs Two-step comparisons.
pub mod extended_cmp {
    use super::{f4, print_table, HarnessConfig};
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::spec_by_name;
    use autofp_models::classifier::ModelKind;
    use autofp_preprocess::ParamSpace;
    use autofp_search::{OneStep, TwoStep};
    use std::time::Duration;

    /// Run One-step vs Two-step over a space on australian + madeline for
    /// all three models, across a time-limit sweep. Returns the number of
    /// One-step wins and total cells (for the binaries' summary lines).
    pub fn run(figure: &str, space_name: &str, make_space: fn() -> ParamSpace) -> (usize, usize) {
        let cfg = HarnessConfig::from_args();
        let max_ms = match cfg.budget {
            Budget { wall_clock: Some(d), .. } => d.as_millis() as u64,
            _ => 2000,
        };
        let limits: Vec<u64> = [10, 4, 2, 1].iter().map(|div| (max_ms / div).max(10)).collect();

        println!("== {figure}: One-step vs Two-step, {space_name} space ==");
        println!("(scale {}, time limits {:?} ms)\n", cfg.scale, limits);

        let mut header = vec!["Dataset".to_string(), "Model".to_string(), "Strategy".to_string()];
        header.extend(limits.iter().map(|ms| format!("{ms} ms")));
        header.push("".into());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

        let mut rows = Vec::new();
        let mut one_wins = 0usize;
        let mut total = 0usize;
        for name in ["austrilian", "madeline"] {
            let spec = spec_by_name(name).expect("registry dataset");
            let dataset = cfg.generate(&spec);
            for model in ModelKind::ALL {
                let ev = Evaluator::new(
                    &dataset,
                    EvalConfig { model, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
                );
                let mut one_row = vec![name.to_string(), model.name().into(), "One-step".into()];
                let mut two_row = vec![name.to_string(), model.name().into(), "Two-step".into()];
                for &ms in &limits {
                    let budget = Budget::wall_clock(Duration::from_millis(ms));
                    let mut one = OneStep::new(make_space(), cfg.max_len, cfg.seed);
                    let a1 = run_search(&mut one, &ev, budget).best_accuracy();
                    let mut two = TwoStep::new(make_space(), cfg.max_len, cfg.seed);
                    let a2 = run_search(&mut two, &ev, budget).best_accuracy();
                    one_row.push(f4(a1));
                    two_row.push(f4(a2));
                    total += 1;
                    if a1 >= a2 {
                        one_wins += 1;
                    }
                }
                let baseline = f4(ev.baseline_accuracy());
                one_row.push(format!("(no-FP {baseline})"));
                two_row.push(String::new());
                rows.push(one_row);
                rows.push(two_row);
            }
        }
        print_table(&header_refs, &rows);
        println!("\nOne-step wins or ties {one_wins}/{total} (dataset, model, limit) cells.");
        (one_wins, total)
    }
}

/// Shared driver for the Figure 10/11 AutoML-context comparisons.
pub mod automl_cmp {
    use super::{f4, print_table, HarnessConfig};
    use autofp_automl::{AutoSklearnFp, HpoSearch, TpotFp};
    use autofp_core::{pool_map, run_search, EvalConfig, Evaluator};
    use autofp_models::classifier::ModelKind;
    use autofp_preprocess::ParamSpace;
    use autofp_search::Pbt;

    /// Auto-FP (PBT over `make_space`) vs TPOT-FP vs Auto-Sklearn-FP vs
    /// HPO across the dataset × model grid, fanned across cells through
    /// the core worker pool.
    pub fn run(cfg: &HarnessConfig, figure: &str, space_name: &str, make_space: fn() -> ParamSpace) {
        let specs = cfg.specs();
        println!(
            "== {figure}: Auto-FP vs TPOT-FP vs AutoSklearn-FP vs HPO ({space_name} space) =="
        );
        println!("({} datasets, budget {:?}, scale {})\n", specs.len(), cfg.budget, cfg.scale);

        let datasets: Vec<autofp_data::Dataset> =
            specs.iter().map(|s| cfg.generate(s)).collect();
        let mut cells = Vec::new();
        for di in 0..datasets.len() {
            for m in ModelKind::ALL {
                cells.push((di, m));
            }
        }
        let outputs: Vec<(Vec<String>, bool, bool)> =
            pool_map(cfg.threads.max(1), cells.len(), |i| {
                let (di, model) = cells[i];
                let seed = autofp_linalg::rng::derive_seed(cfg.seed, i as u64);
                let ev = Evaluator::new(
                    &datasets[di],
                    EvalConfig { model, train_fraction: 0.8, seed: cfg.seed, train_subsample: None },
                );
                let mut pbt = Pbt::new(make_space(), cfg.max_len, seed);
                let auto_fp = run_search(&mut pbt, &ev, cfg.budget).best_accuracy();
                let mut tpot = TpotFp::new(seed);
                let tpot_fp = run_search(&mut tpot, &ev, cfg.budget).best_accuracy();
                let mut ask = AutoSklearnFp;
                let ask_fp = run_search(&mut ask, &ev, cfg.budget).best_accuracy();
                let mut hpo = HpoSearch::new(model, seed);
                let hpo_out = hpo.run(ev.split(), cfg.budget);

                let row = vec![
                    datasets[di].name.clone(),
                    model.name().to_string(),
                    f4(ev.baseline_accuracy()),
                    f4(auto_fp),
                    f4(tpot_fp),
                    f4(ask_fp),
                    f4(hpo_out.best_accuracy),
                    if auto_fp >= tpot_fp && auto_fp >= hpo_out.best_accuracy {
                        "Auto-FP".into()
                    } else if tpot_fp >= hpo_out.best_accuracy {
                        "TPOT-FP".into()
                    } else {
                        "HPO".into()
                    },
                ];
                (row, auto_fp >= tpot_fp, auto_fp >= hpo_out.best_accuracy)
            });

        let mut rows = Vec::with_capacity(outputs.len());
        let mut beats_tpot = 0usize;
        let mut beats_hpo = 0usize;
        let total = outputs.len();
        for (row, tpot_ok, hpo_ok) in outputs {
            beats_tpot += usize::from(tpot_ok);
            beats_hpo += usize::from(hpo_ok);
            rows.push(row);
        }
        rows.sort();
        print_table(
            &["Dataset", "Model", "no-FP", "Auto-FP(PBT)", "TPOT-FP", "ASk-FP", "HPO", "Winner"],
            &rows,
        );
        println!(
            "\nAuto-FP beats or ties TPOT-FP in {beats_tpot}/{total} cells and HPO in {beats_hpo}/{total} cells.",
        );
    }
}
