//! The preprocessor alphabet: the seven kinds of §2.1.

use std::fmt;

/// The seven widely-used preprocessor families the paper searches over.
///
/// A `PreprocKind` is the *search alphabet* symbol; a
/// [`crate::Preproc`] is a kind plus concrete parameter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PreprocKind {
    /// Threshold values to {0, 1}.
    Binarizer,
    /// Scale each column by its maximum absolute value.
    MaxAbsScaler,
    /// Scale each column to [0, 1].
    MinMaxScaler,
    /// Scale each *row* to unit norm.
    Normalizer,
    /// Yeo-Johnson power transform toward normality.
    PowerTransformer,
    /// Map each column onto its empirical quantiles.
    QuantileTransformer,
    /// Zero-mean, unit-variance standardization.
    StandardScaler,
}

impl PreprocKind {
    /// All seven kinds, in a fixed canonical order.
    pub const ALL: [PreprocKind; 7] = [
        PreprocKind::Binarizer,
        PreprocKind::MaxAbsScaler,
        PreprocKind::MinMaxScaler,
        PreprocKind::Normalizer,
        PreprocKind::PowerTransformer,
        PreprocKind::QuantileTransformer,
        PreprocKind::StandardScaler,
    ];

    /// Canonical index in `ALL` (used by encodings and policies). The
    /// match is total, so it can never disagree with `ALL` without a
    /// compile error here or in the roundtrip unit test.
    pub fn index(self) -> usize {
        match self {
            PreprocKind::Binarizer => 0,
            PreprocKind::MaxAbsScaler => 1,
            PreprocKind::MinMaxScaler => 2,
            PreprocKind::Normalizer => 3,
            PreprocKind::PowerTransformer => 4,
            PreprocKind::QuantileTransformer => 5,
            PreprocKind::StandardScaler => 6,
        }
    }

    /// Inverse of [`PreprocKind::index`].
    pub fn from_index(i: usize) -> PreprocKind {
        Self::ALL[i]
    }

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PreprocKind::Binarizer => "Binarizer",
            PreprocKind::MaxAbsScaler => "MaxAbsScaler",
            PreprocKind::MinMaxScaler => "MinMaxScaler",
            PreprocKind::Normalizer => "Normalizer",
            PreprocKind::PowerTransformer => "PowerTransformer",
            PreprocKind::QuantileTransformer => "QuantileTransformer",
            PreprocKind::StandardScaler => "StandardScaler",
        }
    }
}

impl fmt::Display for PreprocKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, k) in PreprocKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(PreprocKind::from_index(i), *k);
        }
    }

    #[test]
    fn seven_kinds() {
        assert_eq!(PreprocKind::ALL.len(), 7);
        assert_eq!(PreprocKind::StandardScaler.to_string(), "StandardScaler");
    }
}
