#![warn(missing_docs)]
//! The seven Auto-FP feature preprocessors and pipeline machinery.
//!
//! Implements Definition 1 (feature preprocessor) and Definition 2
//! (feature preprocessing pipeline) of the paper, with the same formulas
//! and default parameters as the scikit-learn implementations the study
//! used (§2.1): `StandardScaler`, `MaxAbsScaler`, `MinMaxScaler`,
//! `Normalizer`, `PowerTransformer` (Yeo-Johnson), `QuantileTransformer`
//! and `Binarizer`.
//!
//! A [`Pipeline`] is fit on training data and then applied to validation
//! data; [`space::ParamSpace`] describes the default and extended
//! (Tables 6-7) parameter search spaces; [`encoding`] turns pipelines
//! into fixed-width vectors for surrogate models.

pub mod artifact;
pub mod encoding;
pub mod enumerate;
pub mod kinds;
pub mod pipeline;
pub mod power;
pub mod preproc;
pub mod quantile;
pub mod space;

pub use kinds::PreprocKind;
pub use pipeline::{FittedPipeline, Pipeline};
pub use preproc::{FittedPreproc, Norm, OutputDist, Preproc};
pub use space::ParamSpace;
