//! `QuantileTransformer`: map each column onto its empirical quantiles.
//!
//! Fit stores `n_quantiles` reference values per column (the empirical
//! quantiles at evenly spaced probabilities, scikit-learn's scheme, with
//! `n_quantiles` capped at the number of training rows). Transform maps a
//! value to its interpolated quantile position in `[0, 1]`; with
//! `output = Normal` the position is pushed through the inverse normal
//! CDF. Values outside the fitted range clip to the boundaries, exactly
//! as scikit-learn clips.

use crate::preproc::OutputDist;
use autofp_linalg::dist::norm_ppf;
use autofp_linalg::stats::quantile_sorted;
use autofp_linalg::Matrix;

/// Fitted quantile transform (per-column reference quantiles).
#[derive(Debug, Clone)]
pub struct FittedQuantile {
    /// `references[j]` holds the sorted quantile values of column `j`.
    pub(crate) references: Vec<Vec<f64>>,
    pub(crate) output: OutputDist,
}

impl FittedQuantile {
    /// Fit on training features.
    pub fn fit(x: &Matrix, n_quantiles: usize, output: OutputDist) -> FittedQuantile {
        let n = x.nrows();
        let q = n_quantiles.clamp(2, n.max(2));
        let mut references = Vec::with_capacity(x.ncols());
        for j in 0..x.ncols() {
            let mut col: Vec<f64> = x.col(j).into_iter().filter(|v| v.is_finite()).collect();
            col.sort_by(f64::total_cmp);
            let refs: Vec<f64> = if col.is_empty() {
                vec![0.0, 0.0]
            } else {
                (0..q).map(|i| quantile_sorted(&col, i as f64 / (q - 1) as f64)).collect()
            };
            references.push(refs);
        }
        FittedQuantile { references, output }
    }

    /// Number of stored quantiles per column.
    pub fn n_quantiles(&self) -> usize {
        self.references.first().map_or(0, Vec::len)
    }

    /// Transform a matrix in place.
    pub fn transform(&self, x: &mut Matrix) {
        let cols = x.ncols();
        assert_eq!(cols, self.references.len(), "column count mismatch");
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            let refs = &self.references[i % cols];
            let pos = quantile_position(refs, *v);
            *v = match self.output {
                OutputDist::Uniform => pos,
                OutputDist::Normal => norm_ppf(pos),
            };
        }
    }
}

/// Interpolated quantile position of `v` within sorted `refs`, in `[0, 1]`.
fn quantile_position(refs: &[f64], v: f64) -> f64 {
    let q = refs.len();
    debug_assert!(q >= 2);
    if v.is_nan() {
        // NaN carries no rank information; map to the median position
        // (downstream models additionally sanitize their inputs).
        return 0.5;
    }
    let lo = refs[0];
    let hi = refs[q - 1];
    if v <= lo {
        return 0.0;
    }
    if v >= hi {
        return 1.0;
    }
    // Binary search for the first reference >= v.
    let idx = refs.partition_point(|&r| r < v);
    // refs[idx-1] < v <= refs[idx]
    let (a, b) = (refs[idx - 1], refs[idx]);
    let frac = if b > a { (v - a) / (b - a) } else { 0.0 };
    ((idx - 1) as f64 + frac) / (q - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_uniform() {
        // Column [-1.5, 1, 1.5, 2.5, 3, 4, 5] -> [0, 1/6, ..., 1].
        let x = Matrix::column_vector(&[-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0]);
        let fitted = FittedQuantile::fit(&x, 1000, OutputDist::Uniform);
        let mut m = x.clone();
        fitted.transform(&mut m);
        for (i, v) in m.col(0).iter().enumerate() {
            assert!((v - i as f64 / 6.0).abs() < 1e-9, "{:?}", m.col(0));
        }
    }

    #[test]
    fn n_quantiles_capped_at_rows() {
        let x = Matrix::column_vector(&[1.0, 2.0, 3.0]);
        let fitted = FittedQuantile::fit(&x, 1000, OutputDist::Uniform);
        assert_eq!(fitted.n_quantiles(), 3);
    }

    #[test]
    fn out_of_range_clips() {
        let x = Matrix::column_vector(&[0.0, 1.0, 2.0]);
        let fitted = FittedQuantile::fit(&x, 10, OutputDist::Uniform);
        let mut m = Matrix::column_vector(&[-100.0, 100.0, 1.0]);
        fitted.transform(&mut m);
        let out = m.col(0);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], 1.0);
        assert!((out[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn normal_output_is_probit_of_uniform() {
        let x = Matrix::column_vector(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let fu = FittedQuantile::fit(&x, 5, OutputDist::Uniform);
        let fnorm = FittedQuantile::fit(&x, 5, OutputDist::Normal);
        let mut mu = x.clone();
        let mut mn = x.clone();
        fu.transform(&mut mu);
        fnorm.transform(&mut mn);
        for (u, n) in mu.col(0).iter().zip(mn.col(0)) {
            assert!((norm_ppf(*u) - n).abs() < 1e-9);
            assert!(n.is_finite());
        }
    }

    #[test]
    fn constant_column_maps_to_boundary() {
        let x = Matrix::column_vector(&[7.0; 4]);
        let fitted = FittedQuantile::fit(&x, 10, OutputDist::Uniform);
        let mut m = x.clone();
        fitted.transform(&mut m);
        assert!(m.is_finite());
    }

    #[test]
    fn coarse_quantiles_still_monotone() {
        let x = Matrix::column_vector(&(0..100).map(|i| (i * i) as f64).collect::<Vec<_>>());
        let fitted = FittedQuantile::fit(&x, 10, OutputDist::Uniform);
        let mut m = x.clone();
        fitted.transform(&mut m);
        let out = m.col(0);
        for w in out.windows(2) {
            assert!(w[1] >= w[0], "not monotone");
        }
        assert_eq!(fitted.n_quantiles(), 10);
    }

    #[test]
    fn uniformizes_skewed_data() {
        // Severely skewed input becomes near-uniform: mean ~0.5, low skew.
        let col: Vec<f64> = (1..=1000).map(|i| (i as f64).powi(4)).collect();
        let x = Matrix::column_vector(&col);
        let fitted = FittedQuantile::fit(&x, 1000, OutputDist::Uniform);
        let mut m = x.clone();
        fitted.transform(&mut m);
        let out = m.col(0);
        let mean = autofp_linalg::stats::mean(&out);
        let skew = autofp_linalg::stats::skewness(&out);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }
}
