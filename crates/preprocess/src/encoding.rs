//! Pipeline encodings for surrogate models and policies.
//!
//! Surrogate-model-based search algorithms (SMAC, TPE, Progressive NAS)
//! need a fixed-width numeric representation of a pipeline; the LSTM
//! surrogates and the ENAS controller need a token sequence. Both views
//! live here so every algorithm encodes pipelines identically.

use crate::kinds::PreprocKind;
use crate::pipeline::Pipeline;
use crate::preproc::{Norm, OutputDist, Preproc};

/// Features per pipeline position: 7-way kind one-hot + 3 parameter slots.
pub const POSITION_WIDTH: usize = PreprocKind::ALL.len() + 3;

/// Encode a pipeline as a fixed-width vector.
///
/// Layout: `max_len` blocks of [`POSITION_WIDTH`] (kind one-hot, then
/// normalized parameters), followed by a single normalized-length
/// feature. Empty positions are all-zero, so pipelines of every length
/// share one feature space.
pub fn encode_pipeline(p: &Pipeline, max_len: usize) -> Vec<f64> {
    let mut out = vec![0.0; max_len * POSITION_WIDTH + 1];
    for (i, step) in p.steps().iter().enumerate().take(max_len) {
        let base = i * POSITION_WIDTH;
        out[base + step.kind().index()] = 1.0;
        let params = param_features(step);
        out[base + 7..base + 10].copy_from_slice(&params);
    }
    out[max_len * POSITION_WIDTH] = p.len().min(max_len) as f64 / max_len as f64;
    out
}

/// Width of [`encode_pipeline`]'s output for a given `max_len`.
pub fn encoding_width(max_len: usize) -> usize {
    max_len * POSITION_WIDTH + 1
}

/// Three normalized parameter features of a step.
///
/// * slot 0: primary continuous parameter (threshold in `[0,1]`, or
///   `log10(n_quantiles)/log10(2000)`),
/// * slot 1: categorical secondary parameter (norm / output
///   distribution), scaled to `[0,1]`,
/// * slot 2: boolean flag (`with_mean` / `standardize`).
fn param_features(p: &Preproc) -> [f64; 3] {
    match p {
        Preproc::Binarizer { threshold } => [*threshold, 0.0, 0.0],
        Preproc::MaxAbsScaler | Preproc::MinMaxScaler => [0.0, 0.0, 0.0],
        Preproc::Normalizer { norm } => {
            let n = match norm {
                Norm::L1 => 0.0,
                Norm::L2 => 0.5,
                Norm::Max => 1.0,
            };
            [0.0, n, 0.0]
        }
        Preproc::PowerTransformer { standardize } => [0.0, 0.0, *standardize as u8 as f64],
        Preproc::QuantileTransformer { n_quantiles, output } => {
            let q = (*n_quantiles as f64).log10() / 2000f64.log10();
            let o = match output {
                OutputDist::Uniform => 0.0,
                OutputDist::Normal => 1.0,
            };
            [q, o, 0.0]
        }
        Preproc::StandardScaler { with_mean } => [0.0, 0.0, *with_mean as u8 as f64],
    }
}

/// Token id of a kind for sequence models: `0` is reserved for padding /
/// start-of-sequence, kinds map to `1..=7`.
pub fn kind_token(kind: PreprocKind) -> usize {
    kind.index() + 1
}

/// Vocabulary size for sequence models (padding + 7 kinds).
pub const VOCAB: usize = PreprocKind::ALL.len() + 1;

/// Encode a pipeline as a padded token sequence of length `max_len`.
pub fn encode_tokens(p: &Pipeline, max_len: usize) -> Vec<usize> {
    let mut out = vec![0usize; max_len];
    for (i, step) in p.steps().iter().enumerate().take(max_len) {
        out[i] = kind_token(step.kind());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_is_consistent() {
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer, PreprocKind::StandardScaler]);
        let e = encode_pipeline(&p, 7);
        assert_eq!(e.len(), encoding_width(7));
        assert_eq!(e.len(), 7 * 10 + 1);
    }

    #[test]
    fn one_hot_positions() {
        let p = Pipeline::from_kinds(&[PreprocKind::Normalizer]);
        let e = encode_pipeline(&p, 3);
        // Position 0: Normalizer has index 3.
        assert_eq!(e[3], 1.0);
        assert_eq!(e[..7].iter().sum::<f64>(), 1.0);
        // Position 1 and 2 are empty.
        assert!(e[10..20].iter().all(|&v| v == 0.0));
        // Length feature = 1/3.
        assert!((e[30] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parameters_distinguish_variants() {
        let a = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.0 }]);
        let b = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.8 }]);
        assert_ne!(encode_pipeline(&a, 4), encode_pipeline(&b, 4));
        let c = Pipeline::new(vec![Preproc::QuantileTransformer {
            n_quantiles: 10,
            output: OutputDist::Uniform,
        }]);
        let d = Pipeline::new(vec![Preproc::QuantileTransformer {
            n_quantiles: 2000,
            output: OutputDist::Normal,
        }]);
        assert_ne!(encode_pipeline(&c, 4), encode_pipeline(&d, 4));
    }

    #[test]
    fn overlong_pipelines_truncate() {
        let p = Pipeline::from_kinds(&[PreprocKind::Binarizer; 10]);
        let e = encode_pipeline(&p, 4);
        assert_eq!(e.len(), encoding_width(4));
        assert_eq!(*e.last().unwrap(), 1.0);
    }

    #[test]
    fn tokens_pad_with_zero() {
        let p = Pipeline::from_kinds(&[PreprocKind::StandardScaler, PreprocKind::Binarizer]);
        let t = encode_tokens(&p, 5);
        assert_eq!(t, vec![7, 1, 0, 0, 0]);
        assert!(t.iter().all(|&id| id < VOCAB));
    }
}
