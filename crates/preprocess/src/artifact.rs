//! Byte codec for fitted preprocessing state.
//!
//! Serializes a [`FittedPipeline`] — every learned parameter of every
//! step (scaler mins/ranges/means/stds, quantile reference tables,
//! Yeo-Johnson λs) — into a compact, canonical byte payload so a
//! pipeline fitted once during search can be exported and served
//! without refitting (and therefore without training-serving skew).
//!
//! The format follows the repo-wide wire idiom (`evald::wire`,
//! `core::repo`): little-endian integers, `f64` as IEEE-754 bit
//! patterns, `u32`-length-prefixed vectors, one leading tag byte per
//! step (the [`PreprocKind::index`] code). Encoding is canonical —
//! re-encoding a decoded value reproduces the input bytes exactly —
//! and decoding is **total**: arbitrary bytes produce `Ok` or
//! [`DecodeError`], never a panic, unbounded allocation, or an
//! out-of-bounds index in later `transform` calls (structural
//! invariants such as paired vector lengths are enforced here).

use crate::kinds::PreprocKind;
use crate::pipeline::FittedPipeline;
use crate::power::FittedPower;
use crate::preproc::{FittedPreproc, Norm, OutputDist};
use crate::quantile::FittedQuantile;
use std::fmt;

/// Upper bound on pipeline length accepted by the decoder (matches the
/// wire-protocol cap; the search space never exceeds 7).
pub const MAX_STEPS: usize = 64;

/// A fitted-state payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of the first structural violation.
    pub detail: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fitted-state decode error: {}", self.detail)
    }
}

impl std::error::Error for DecodeError {}

fn corrupt(detail: impl Into<String>) -> DecodeError {
    DecodeError { detail: detail.into() }
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives (the crate-local copy of the wire idiom;
// `preprocess` sits below `core`/`evald` in the dependency order, so the
// helpers are replicated here exactly as `core::repo` replicates them).
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn vec_f64(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(corrupt("truncated payload"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(corrupt(format!("invalid bool byte {v}"))),
        }
    }

    fn vec_f64(&mut self) -> Result<Vec<f64>, DecodeError> {
        let n = self.u32()? as usize;
        // Bounds-check the byte span *before* allocating, so a corrupt
        // length can never trigger an oversized allocation.
        let bytes = n.checked_mul(8).ok_or_else(|| corrupt("vector length overflow"))?;
        let raw = self.take(bytes)?;
        let mut out = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            out.push(f64::from_bits(u64::from_le_bytes(a)));
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!("{} trailing bytes", self.buf.len() - self.pos)));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Step codec
// ---------------------------------------------------------------------------

fn norm_code(n: Norm) -> u8 {
    match n {
        Norm::L1 => 0,
        Norm::L2 => 1,
        Norm::Max => 2,
    }
}

fn norm_from_code(c: u8) -> Result<Norm, DecodeError> {
    match c {
        0 => Ok(Norm::L1),
        1 => Ok(Norm::L2),
        2 => Ok(Norm::Max),
        _ => Err(corrupt(format!("invalid norm code {c}"))),
    }
}

fn dist_code(d: OutputDist) -> u8 {
    match d {
        OutputDist::Uniform => 0,
        OutputDist::Normal => 1,
    }
}

fn dist_from_code(c: u8) -> Result<OutputDist, DecodeError> {
    match c {
        0 => Ok(OutputDist::Uniform),
        1 => Ok(OutputDist::Normal),
        _ => Err(corrupt(format!("invalid output-dist code {c}"))),
    }
}

fn enc_step(e: &mut Enc, step: &FittedPreproc) {
    e.u8(step_kind(step).index() as u8);
    match step {
        FittedPreproc::Binarizer { threshold } => e.f64(*threshold),
        FittedPreproc::MaxAbs { scale } => e.vec_f64(scale),
        FittedPreproc::MinMax { mins, ranges } => {
            e.vec_f64(mins);
            e.vec_f64(ranges);
        }
        FittedPreproc::Normalizer { norm } => e.u8(norm_code(*norm)),
        FittedPreproc::Power(p) => {
            e.bool(p.standardize);
            e.vec_f64(&p.lambdas);
            e.vec_f64(&p.means);
            e.vec_f64(&p.stds);
        }
        FittedPreproc::Quantile(q) => {
            e.u8(dist_code(q.output));
            e.u32(q.references.len() as u32);
            for refs in &q.references {
                e.vec_f64(refs);
            }
        }
        FittedPreproc::Standard { means, stds } => {
            e.vec_f64(means);
            e.vec_f64(stds);
        }
    }
}

/// The search-alphabet kind a fitted step was produced by.
pub fn step_kind(step: &FittedPreproc) -> PreprocKind {
    match step {
        FittedPreproc::Binarizer { .. } => PreprocKind::Binarizer,
        FittedPreproc::MaxAbs { .. } => PreprocKind::MaxAbsScaler,
        FittedPreproc::MinMax { .. } => PreprocKind::MinMaxScaler,
        FittedPreproc::Normalizer { .. } => PreprocKind::Normalizer,
        FittedPreproc::Power(_) => PreprocKind::PowerTransformer,
        FittedPreproc::Quantile(_) => PreprocKind::QuantileTransformer,
        FittedPreproc::Standard { .. } => PreprocKind::StandardScaler,
    }
}

fn dec_step(d: &mut Dec<'_>) -> Result<FittedPreproc, DecodeError> {
    let tag = d.u8()?;
    match tag {
        0 => Ok(FittedPreproc::Binarizer { threshold: d.f64()? }),
        1 => Ok(FittedPreproc::MaxAbs { scale: d.vec_f64()? }),
        2 => {
            let mins = d.vec_f64()?;
            let ranges = d.vec_f64()?;
            if mins.len() != ranges.len() {
                return Err(corrupt("minmax mins/ranges length mismatch"));
            }
            Ok(FittedPreproc::MinMax { mins, ranges })
        }
        3 => Ok(FittedPreproc::Normalizer { norm: norm_from_code(d.u8()?)? }),
        4 => {
            let standardize = d.bool()?;
            let lambdas = d.vec_f64()?;
            let means = d.vec_f64()?;
            let stds = d.vec_f64()?;
            if means.len() != lambdas.len() || stds.len() != lambdas.len() {
                return Err(corrupt("power lambda/mean/std length mismatch"));
            }
            Ok(FittedPreproc::Power(FittedPower { lambdas, means, stds, standardize }))
        }
        5 => {
            let output = dist_from_code(d.u8()?)?;
            let cols = d.u32()? as usize;
            // Each column contributes at least a 4-byte length prefix;
            // reject counts the remaining bytes cannot possibly hold.
            if cols > d.buf.len().saturating_sub(d.pos) / 4 {
                return Err(corrupt("quantile column count exceeds payload"));
            }
            let mut references = Vec::with_capacity(cols);
            for _ in 0..cols {
                let refs = d.vec_f64()?;
                if refs.len() < 2 {
                    return Err(corrupt("quantile reference table shorter than 2"));
                }
                references.push(refs);
            }
            Ok(FittedPreproc::Quantile(FittedQuantile { references, output }))
        }
        6 => {
            let means = d.vec_f64()?;
            let stds = d.vec_f64()?;
            if means.len() != stds.len() {
                return Err(corrupt("standard means/stds length mismatch"));
            }
            Ok(FittedPreproc::Standard { means, stds })
        }
        _ => Err(corrupt(format!("unknown fitted-step tag {tag}"))),
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Encode one fitted step (tag byte + parameters).
pub fn encode_step(step: &FittedPreproc) -> Vec<u8> {
    let mut e = Enc::new();
    enc_step(&mut e, step);
    e.buf
}

/// Decode one fitted step; rejects trailing bytes.
pub fn decode_step(bytes: &[u8]) -> Result<FittedPreproc, DecodeError> {
    let mut d = Dec::new(bytes);
    let step = dec_step(&mut d)?;
    d.finish()?;
    Ok(step)
}

/// Encode a fitted pipeline: `u32` step count followed by each step.
pub fn encode_pipeline(p: &FittedPipeline) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(p.steps().len() as u32);
    for step in p.steps() {
        enc_step(&mut e, step);
    }
    e.buf
}

/// Decode a fitted pipeline; total, canonical, rejects trailing bytes.
pub fn decode_pipeline(bytes: &[u8]) -> Result<FittedPipeline, DecodeError> {
    let mut d = Dec::new(bytes);
    let n = d.u32()? as usize;
    if n > MAX_STEPS {
        return Err(corrupt(format!("pipeline of {n} steps exceeds cap {MAX_STEPS}")));
    }
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        steps.push(dec_step(&mut d)?);
    }
    d.finish()?;
    Ok(FittedPipeline::from_steps(steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use autofp_linalg::Matrix;

    fn train_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![-1.5, 10.0],
            vec![1.0, 100.0],
            vec![2.5, 1000.0],
            vec![4.0, 10000.0],
        ])
    }

    fn fit_all_kinds() -> FittedPipeline {
        let p = Pipeline::from_kinds(&PreprocKind::ALL);
        p.fit_transform(&train_matrix()).0
    }

    #[test]
    fn pipeline_round_trip_is_canonical_and_preserves_transform() {
        let fitted = fit_all_kinds();
        let bytes = encode_pipeline(&fitted);
        let back = decode_pipeline(&bytes).expect("round trip");
        // Canonical: re-encoding reproduces the exact bytes.
        assert_eq!(encode_pipeline(&back), bytes);
        // And the decoded pipeline transforms bit-identically.
        let probe = Matrix::from_rows(&[vec![0.3, 55.5], vec![-2.0, 1e6]]);
        let a = fitted.transform_new(&probe);
        let b = back.transform_new(&probe);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn every_step_shape_round_trips() {
        for kind in PreprocKind::ALL {
            let p = Pipeline::from_kinds(&[kind]);
            let fitted = p.fit_transform(&train_matrix()).0;
            let step = &fitted.steps()[0];
            let bytes = encode_step(step);
            let back = decode_step(&bytes).expect("step round trip");
            assert_eq!(encode_step(&back), bytes, "{kind}");
        }
    }

    #[test]
    fn empty_pipeline_round_trips() {
        let fitted = Pipeline::empty().fit_transform(&train_matrix()).0;
        let bytes = encode_pipeline(&fitted);
        assert_eq!(bytes, vec![0, 0, 0, 0]);
        let back = decode_pipeline(&bytes).expect("empty");
        assert!(back.steps().is_empty());
    }

    #[test]
    fn golden_bytes_are_locked() {
        // Binarizer(0.5) -> Normalizer(L2): the byte layout is part of
        // the artifact contract; changing it requires a format bump.
        let fitted = FittedPipeline::from_steps(vec![
            FittedPreproc::Binarizer { threshold: 0.5 },
            FittedPreproc::Normalizer { norm: Norm::L2 },
        ]);
        let mut expected = vec![2, 0, 0, 0]; // two steps
        expected.push(0); // Binarizer tag
        expected.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        expected.push(3); // Normalizer tag
        expected.push(1); // L2 code
        assert_eq!(encode_pipeline(&fitted), expected);

        // MinMax with explicit parameters.
        let mm = FittedPreproc::MinMax { mins: vec![1.0], ranges: vec![2.0] };
        let mut want = vec![2]; // MinMaxScaler tag
        want.extend_from_slice(&1u32.to_le_bytes());
        want.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        want.extend_from_slice(&1u32.to_le_bytes());
        want.extend_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert_eq!(encode_step(&mm), want);
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = encode_pipeline(&fit_all_kinds());
        for len in 0..bytes.len() {
            assert!(
                decode_pipeline(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_pipeline(&fit_all_kinds());
        bytes.push(0);
        assert!(decode_pipeline(&bytes).is_err());
    }

    #[test]
    fn byte_flips_never_panic_and_stay_structurally_valid() {
        let bytes = encode_pipeline(&fit_all_kinds());
        for i in 0..bytes.len() {
            for v in [0u8, 1, 2, 127, 255] {
                let mut m = bytes.clone();
                if m[i] == v {
                    continue;
                }
                m[i] = v;
                // Total decode: Ok or Err, never a panic. When it does
                // decode, the structural invariants must hold so that a
                // later transform cannot index out of bounds.
                if let Ok(p) = decode_pipeline(&m) {
                    assert!(p.steps().len() <= MAX_STEPS);
                }
            }
        }
    }

    #[test]
    fn structural_violations_rejected() {
        // MinMax with mismatched mins/ranges lengths.
        let mut e = vec![2u8];
        e.extend_from_slice(&1u32.to_le_bytes());
        e.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        e.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_step(&e).is_err());
        // Quantile column with a single reference value.
        let mut q = vec![5u8, 0];
        q.extend_from_slice(&1u32.to_le_bytes());
        q.extend_from_slice(&1u32.to_le_bytes());
        q.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert!(decode_step(&q).is_err());
        // Oversized step count.
        let mut p = Vec::new();
        p.extend_from_slice(&(MAX_STEPS as u32 + 1).to_le_bytes());
        assert!(decode_pipeline(&p).is_err());
    }
}
