//! `PowerTransformer`: the Yeo-Johnson transformation (Eq. 1 of the paper).
//!
//! For each column independently, the optimal exponent λ is found by
//! maximizing the Yeo-Johnson profile log-likelihood (the same objective
//! scikit-learn optimizes with Brent's method; we use golden-section
//! search on λ ∈ [-5, 5], which is robust because the profile likelihood
//! is unimodal in practice). With `standardize = true` (the sklearn
//! default) the transformed column is then scaled to zero mean and unit
//! variance.

use autofp_linalg::stats;
use autofp_linalg::Matrix;

const LAMBDA_LO: f64 = -5.0;
const LAMBDA_HI: f64 = 5.0;
/// Golden-section iterations; 48 brackets λ to ~1e-9 which is far below
/// any effect on downstream models.
const GOLDEN_ITERS: usize = 48;
/// Guard for exp overflow when computing `(1+x)^λ` in log space.
const MAX_EXPONENT: f64 = 350.0;

/// Yeo-Johnson transform of a single value (Eq. 1).
pub fn yeo_johnson(x: f64, lambda: f64) -> f64 {
    if x >= 0.0 {
        if lambda.abs() < 1e-12 {
            (x + 1.0).ln()
        } else {
            let e = lambda * (x + 1.0).ln();
            if e > MAX_EXPONENT {
                f64::INFINITY
            } else {
                (e.exp() - 1.0) / lambda
            }
        }
    } else if (lambda - 2.0).abs() < 1e-12 {
        -(1.0 - x).ln()
    } else {
        let e = (2.0 - lambda) * (1.0 - x).ln();
        if e > MAX_EXPONENT {
            f64::NEG_INFINITY
        } else {
            -(e.exp() - 1.0) / (2.0 - lambda)
        }
    }
}

/// Yeo-Johnson profile log-likelihood of a column for a given λ
/// (the scipy `yeojohnson_llf` objective).
fn log_likelihood(col: &[f64], lambda: f64) -> f64 {
    let n = col.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let transformed: Vec<f64> = col.iter().map(|&x| yeo_johnson(x, lambda)).collect();
    if transformed.iter().any(|v| !v.is_finite()) {
        return f64::NEG_INFINITY;
    }
    let var = stats::variance(&transformed);
    if var <= 1e-300 {
        return f64::NEG_INFINITY;
    }
    let jacobian: f64 =
        col.iter().map(|&x| x.signum() * (x.abs() + 1.0).ln()).sum::<f64>() * (lambda - 1.0);
    -n / 2.0 * var.ln() + jacobian
}

/// Maximum-likelihood λ for one column via golden-section search.
pub fn optimal_lambda(col: &[f64]) -> f64 {
    // Constant columns: λ is irrelevant; use identity (λ = 1).
    if stats::variance(col) <= 1e-300 {
        return 1.0;
    }
    let phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (LAMBDA_LO, LAMBDA_HI);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let mut fc = log_likelihood(col, c);
    let mut fd = log_likelihood(col, d);
    for _ in 0..GOLDEN_ITERS {
        if fc > fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = log_likelihood(col, c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = log_likelihood(col, d);
        }
    }
    (a + b) / 2.0
}

/// Fitted Yeo-Johnson power transform: per-column λ and (optionally)
/// post-transform standardization statistics.
#[derive(Debug, Clone)]
pub struct FittedPower {
    pub(crate) lambdas: Vec<f64>,
    pub(crate) means: Vec<f64>,
    pub(crate) stds: Vec<f64>,
    pub(crate) standardize: bool,
}

impl FittedPower {
    /// Fit λ per column on the training matrix.
    pub fn fit(x: &Matrix, standardize: bool) -> FittedPower {
        let d = x.ncols();
        let mut lambdas = Vec::with_capacity(d);
        let mut means = vec![0.0; d];
        let mut stds = vec![1.0; d];
        for j in 0..d {
            let col: Vec<f64> = x.col(j).into_iter().filter(|v| v.is_finite()).collect();
            let lambda = optimal_lambda(&col);
            if standardize {
                let transformed: Vec<f64> =
                    col.iter().map(|&v| clamp_finite(yeo_johnson(v, lambda))).collect();
                means[j] = stats::mean(&transformed);
                let s = stats::std_dev(&transformed);
                stds[j] = if s > 0.0 { s } else { 1.0 };
            }
            lambdas.push(lambda);
        }
        FittedPower { lambdas, means, stds, standardize }
    }

    /// Per-column fitted exponents.
    pub fn lambdas(&self) -> &[f64] {
        &self.lambdas
    }

    /// Transform a matrix in place.
    pub fn transform(&self, x: &mut Matrix) {
        let cols = x.ncols();
        assert_eq!(cols, self.lambdas.len(), "column count mismatch");
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            let j = i % cols;
            let mut t = clamp_finite(yeo_johnson(*v, self.lambdas[j]));
            if self.standardize {
                t = (t - self.means[j]) / self.stds[j];
            }
            *v = t;
        }
    }
}

/// Replace non-finite transform outputs by a large finite sentinel so
/// downstream models never see inf/NaN (can occur when validation data
/// lies far outside the fitted range).
#[inline]
fn clamp_finite(v: f64) -> f64 {
    if v.is_nan() {
        0.0
    } else {
        v.clamp(-1e12, 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_linalg::rng::{rng_from_seed, standard_normal};

    #[test]
    fn identity_when_lambda_one() {
        for &x in &[-3.0, -0.5, 0.0, 0.5, 3.0] {
            assert!((yeo_johnson(x, 1.0) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn log_branch_at_lambda_zero() {
        assert!((yeo_johnson(3.0, 0.0) - (4.0_f64).ln()).abs() < 1e-12);
        assert!((yeo_johnson(-3.0, 2.0) + (4.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn continuity_across_lambda_branches() {
        // λ → 0 for x ≥ 0 and λ → 2 for x < 0 must match the log branches.
        assert!((yeo_johnson(2.0, 1e-9) - yeo_johnson(2.0, 0.0)).abs() < 1e-6);
        assert!((yeo_johnson(-2.0, 2.0 - 1e-9) - yeo_johnson(-2.0, 2.0)).abs() < 1e-6);
    }

    #[test]
    fn monotone_in_x() {
        for &lambda in &[-2.0, 0.0, 0.5, 1.0, 2.0, 3.0] {
            let mut prev = f64::NEG_INFINITY;
            for i in -20..=20 {
                let v = yeo_johnson(i as f64 / 4.0, lambda);
                assert!(v >= prev, "not monotone at lambda {lambda}");
                prev = v;
            }
        }
    }

    #[test]
    fn paper_figure1_lambda_and_values() {
        // The paper reports λ ≈ 1.22 for the Figure 1 column and
        // PowerTransformer output (standardized) of -1.72 for x = -1.5.
        let x = Matrix::column_vector(&[-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0]);
        let fitted = FittedPower::fit(&x, true);
        let lambda = fitted.lambdas()[0];
        assert!((lambda - 1.22).abs() < 0.15, "lambda {lambda}");
        let mut m = x.clone();
        fitted.transform(&mut m);
        let out = m.col(0);
        assert!((out[0] + 1.72).abs() < 0.1, "out {out:?}");
        assert!((out[6] - 1.53).abs() < 0.1, "out {out:?}");
        // Standardized output: zero mean, unit variance.
        assert!(stats::mean(&out).abs() < 1e-9);
        assert!((stats::std_dev(&out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_becomes_more_normal() {
        let mut rng = rng_from_seed(3);
        let col: Vec<f64> = (0..2000).map(|_| standard_normal(&mut rng).exp()).collect();
        let before = stats::skewness(&col).abs();
        let x = Matrix::column_vector(&col);
        let fitted = FittedPower::fit(&x, false);
        let mut m = x.clone();
        fitted.transform(&mut m);
        let after = stats::skewness(&m.col(0)).abs();
        assert!(after < before / 3.0, "skew before {before}, after {after}");
        // Right-skewed data must pick a strongly concave transform
        // (λ well below 1; the exact optimum for exp(Z) under the
        // Yeo-Johnson x+1 shift is around -0.85, not 0).
        assert!(fitted.lambdas()[0] < 0.2, "lambda {:?}", fitted.lambdas());
    }

    #[test]
    fn constant_column_passthrough() {
        let x = Matrix::column_vector(&[4.0; 5]);
        let fitted = FittedPower::fit(&x, true);
        let mut m = x.clone();
        fitted.transform(&mut m);
        assert!(m.is_finite());
    }

    #[test]
    fn extreme_values_stay_finite() {
        let x = Matrix::column_vector(&[0.0, 1.0, 1e9, -1e9]);
        let fitted = FittedPower::fit(&x, true);
        let mut m = Matrix::column_vector(&[1e15, -1e15, 5.0, 0.0]);
        fitted.transform(&mut m);
        assert!(m.is_finite());
    }
}
