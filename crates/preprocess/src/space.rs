//! Parameter search spaces (§6 of the paper, Tables 6 and 7).
//!
//! A [`ParamSpace`] lists, for each preprocessor kind, the admissible
//! parameterizations. Three instances matter:
//!
//! * [`ParamSpace::default_space`] — one (scikit-learn-default) variant
//!   per kind; this is the §5 pipeline-search space.
//! * [`ParamSpace::low_cardinality`] — Table 6; 31 variants in total.
//! * [`ParamSpace::high_cardinality`] — Table 7; the
//!   `QuantileTransformer` dominates with ~99% of variants, which is the
//!   property that makes One-step search degenerate (§6.3).

use crate::kinds::PreprocKind;
use crate::pipeline::Pipeline;
use crate::preproc::{Norm, OutputDist, Preproc};
use rand::rngs::StdRng;
use rand::Rng;

/// Admissible parameterizations per preprocessor kind.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// `variants[k]` = parameterizations of `PreprocKind::from_index(k)`.
    variants: [Vec<Preproc>; 7],
    name: &'static str,
}

impl ParamSpace {
    /// The default search space: each kind with scikit-learn defaults.
    pub fn default_space() -> ParamSpace {
        let variants =
            PreprocKind::ALL.map(|k| vec![Preproc::default_for(k)]);
        ParamSpace { variants, name: "default" }
    }

    /// Extended low-cardinality space (Table 6). Max per-parameter
    /// cardinality is 8 (`n_quantiles`); 31 variants in total.
    pub fn low_cardinality() -> ParamSpace {
        let thresholds = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let n_quantiles = [10, 100, 200, 500, 1000, 1200, 1500, 2000];
        ParamSpace {
            variants: [
                thresholds.iter().map(|&t| Preproc::Binarizer { threshold: t }).collect(),
                vec![Preproc::MaxAbsScaler],
                vec![Preproc::MinMaxScaler],
                [Norm::L1, Norm::L2, Norm::Max]
                    .iter()
                    .map(|&n| Preproc::Normalizer { norm: n })
                    .collect(),
                [true, false]
                    .iter()
                    .map(|&s| Preproc::PowerTransformer { standardize: s })
                    .collect(),
                n_quantiles
                    .iter()
                    .flat_map(|&q| {
                        [OutputDist::Uniform, OutputDist::Normal]
                            .into_iter()
                            .map(move |o| Preproc::QuantileTransformer { n_quantiles: q, output: o })
                    })
                    .collect(),
                [true, false]
                    .iter()
                    .map(|&m| Preproc::StandardScaler { with_mean: m })
                    .collect(),
            ],
            name: "low-cardinality",
        }
    }

    /// Extended high-cardinality space (Table 7): `threshold` from 0 to 1
    /// in steps of 0.05 and `n_quantiles` from 10 to 2000 in steps of 1.
    pub fn high_cardinality() -> ParamSpace {
        let thresholds: Vec<Preproc> =
            (0..=20).map(|i| Preproc::Binarizer { threshold: i as f64 * 0.05 }).collect();
        let quantiles: Vec<Preproc> = (10..=2000)
            .flat_map(|q| {
                [OutputDist::Uniform, OutputDist::Normal]
                    .into_iter()
                    .map(move |o| Preproc::QuantileTransformer { n_quantiles: q, output: o })
            })
            .collect();
        ParamSpace {
            variants: [
                thresholds,
                vec![Preproc::MaxAbsScaler],
                vec![Preproc::MinMaxScaler],
                [Norm::L1, Norm::L2, Norm::Max]
                    .iter()
                    .map(|&n| Preproc::Normalizer { norm: n })
                    .collect(),
                [true, false]
                    .iter()
                    .map(|&s| Preproc::PowerTransformer { standardize: s })
                    .collect(),
                quantiles,
                [true, false]
                    .iter()
                    .map(|&m| Preproc::StandardScaler { with_mean: m })
                    .collect(),
            ],
            name: "high-cardinality",
        }
    }

    /// A space with exactly one fixed parameterization per kind — the
    /// Two-step strategy's inner pipeline-search space after its random
    /// parameter assignment.
    pub fn fixed_assignment(assignment: [Preproc; 7]) -> ParamSpace {
        for (i, p) in assignment.iter().enumerate() {
            assert_eq!(p.kind(), PreprocKind::from_index(i), "assignment out of order");
        }
        ParamSpace { variants: assignment.map(|p| vec![p]), name: "fixed-assignment" }
    }

    /// Space name for reporting.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Variants of one kind.
    pub fn variants_of(&self, kind: PreprocKind) -> &[Preproc] {
        &self.variants[kind.index()]
    }

    /// Total number of variants across all kinds (the One-step alphabet
    /// size: 7 for default, 31 for Table 6, ~4000 for Table 7).
    pub fn n_variants(&self) -> usize {
        self.variants.iter().map(Vec::len).sum()
    }

    /// Flattened One-step alphabet (every parameterization of every kind
    /// treated as a distinct preprocessor).
    pub fn all_variants(&self) -> Vec<Preproc> {
        self.variants.iter().flatten().cloned().collect()
    }

    /// Uniformly sample one variant of a given kind.
    pub fn sample_variant(&self, kind: PreprocKind, rng: &mut StdRng) -> Preproc {
        let vs = &self.variants[kind.index()];
        vs[rng.gen_range(0..vs.len())].clone()
    }

    /// Sample a parameter assignment: one variant per kind (the Two-step
    /// first phase: "randomly selects the parameter values for each
    /// preprocessor").
    pub fn sample_assignment(&self, rng: &mut StdRng) -> [Preproc; 7] {
        PreprocKind::ALL.map(|k| self.sample_variant(k, rng))
    }

    /// Sample a pipeline uniformly: length uniform in `1..=max_len`, then
    /// each position uniform over the *flattened* alphabet (One-step
    /// semantics; with the default space this is the §5 sampler).
    pub fn sample_pipeline(&self, rng: &mut StdRng, max_len: usize) -> Pipeline {
        let len = rng.gen_range(1..=max_len.max(1));
        let total = self.n_variants();
        let steps = (0..len)
            .map(|_| {
                let mut idx = rng.gen_range(0..total);
                for vs in &self.variants {
                    if idx < vs.len() {
                        return vs[idx].clone();
                    }
                    idx -= vs.len();
                }
                // lint:allow(panic-boundary): gen_range(0..total) < sum of variant lengths, so one bucket always matches
                unreachable!("index within total")
            })
            .collect();
        Pipeline::new(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_linalg::rng::rng_from_seed;

    #[test]
    fn default_space_has_seven_variants() {
        let s = ParamSpace::default_space();
        assert_eq!(s.n_variants(), 7);
        for kind in PreprocKind::ALL {
            assert_eq!(s.variants_of(kind).len(), 1);
            assert_eq!(s.variants_of(kind)[0], Preproc::default_for(kind));
        }
    }

    #[test]
    fn low_cardinality_matches_table6() {
        let s = ParamSpace::low_cardinality();
        // Paper: 6 + 1 + 1 + 3 + 2 + 2 + 16 = 31.
        assert_eq!(s.n_variants(), 31);
        assert_eq!(s.variants_of(PreprocKind::Binarizer).len(), 6);
        assert_eq!(s.variants_of(PreprocKind::QuantileTransformer).len(), 16);
        assert_eq!(s.variants_of(PreprocKind::Normalizer).len(), 3);
    }

    #[test]
    fn high_cardinality_is_quantile_dominated() {
        let s = ParamSpace::high_cardinality();
        let q = s.variants_of(PreprocKind::QuantileTransformer).len();
        assert_eq!(q, 1991 * 2);
        // The paper quotes ~99.3% quantile share.
        let share = q as f64 / s.n_variants() as f64;
        assert!(share > 0.99, "share {share}");
        assert_eq!(s.variants_of(PreprocKind::Binarizer).len(), 21);
    }

    #[test]
    fn sample_pipeline_respects_max_len_and_space() {
        let s = ParamSpace::default_space();
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let p = s.sample_pipeline(&mut rng, 4);
            assert!(!p.is_empty() && p.len() <= 4);
            for step in p.steps() {
                assert_eq!(step, &Preproc::default_for(step.kind()));
            }
        }
    }

    #[test]
    fn one_step_sampling_over_dominated_space_picks_quantiles() {
        // The §6.3 phenomenon: in the high-cardinality space almost every
        // sampled step is a QuantileTransformer.
        let s = ParamSpace::high_cardinality();
        let mut rng = rng_from_seed(2);
        let mut quantile_steps = 0;
        let mut total = 0;
        for _ in 0..300 {
            let p = s.sample_pipeline(&mut rng, 4);
            for step in p.steps() {
                total += 1;
                if step.kind() == PreprocKind::QuantileTransformer {
                    quantile_steps += 1;
                }
            }
        }
        let share = quantile_steps as f64 / total as f64;
        assert!(share > 0.95, "share {share}");
    }

    #[test]
    fn assignment_has_one_variant_per_kind() {
        let s = ParamSpace::low_cardinality();
        let mut rng = rng_from_seed(3);
        let a = s.sample_assignment(&mut rng);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.kind(), PreprocKind::from_index(i));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = ParamSpace::low_cardinality();
        let a = s.sample_pipeline(&mut rng_from_seed(9), 7);
        let b = s.sample_pipeline(&mut rng_from_seed(9), 7);
        assert_eq!(a, b);
    }
}
