//! Feature preprocessing pipelines (Definition 2 of the paper).
//!
//! A [`Pipeline`] is an ordered sequence of parameterized preprocessors.
//! Fitting it on training data produces a [`FittedPipeline`]: each step
//! is fit on the output of the previous steps (scikit-learn `Pipeline`
//! semantics), and the fitted chain can then transform validation data.

use crate::kinds::PreprocKind;
use crate::preproc::{FittedPreproc, Preproc};
use autofp_linalg::Matrix;
use std::fmt;

/// Maximum pipeline length of the paper's default search space.
///
/// With 7 preprocessors and lengths 1..=7 the space holds
/// `sum_{i=1}^{7} 7^i = 960_799` pipelines — the "about 1 million"
/// quoted in §7.3 of the paper.
pub const DEFAULT_MAX_LEN: usize = 7;

/// An (unfitted) feature preprocessing pipeline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    steps: Vec<Preproc>,
}

impl Pipeline {
    /// The empty pipeline (identity transformation / "no FP").
    pub fn empty() -> Pipeline {
        Pipeline { steps: Vec::new() }
    }

    /// Build from explicit steps.
    pub fn new(steps: Vec<Preproc>) -> Pipeline {
        Pipeline { steps }
    }

    /// Build from kinds, using each kind's default parameters.
    pub fn from_kinds(kinds: &[PreprocKind]) -> Pipeline {
        Pipeline { steps: kinds.iter().map(|&k| Preproc::default_for(k)).collect() }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the identity pipeline.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Borrow the steps.
    pub fn steps(&self) -> &[Preproc] {
        &self.steps
    }

    /// The kind sequence (the search-space "DNA" of this pipeline).
    pub fn kinds(&self) -> Vec<PreprocKind> {
        self.steps.iter().map(Preproc::kind).collect()
    }

    /// Append a step.
    pub fn push(&mut self, p: Preproc) {
        self.steps.push(p);
    }

    /// Replace the step at `i`.
    pub fn set_step(&mut self, i: usize, p: Preproc) {
        self.steps[i] = p;
    }

    /// Fit every step in sequence on (a copy of) the training features,
    /// returning the fitted chain and the fully transformed features.
    pub fn fit_transform(&self, x: &Matrix) -> (FittedPipeline, Matrix) {
        let mut data = x.clone();
        let mut fitted = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            fitted.push(step.fit_transform(&mut data));
        }
        (FittedPipeline { steps: fitted }, data)
    }

    /// A stable textual key identifying this exact pipeline (kinds and
    /// parameters), used for deduplication in search histories.
    pub fn key(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return f.write_str("(identity)");
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// The fitted counterpart of a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct FittedPipeline {
    steps: Vec<FittedPreproc>,
}

impl FittedPipeline {
    /// Reassemble a fitted pipeline from its fitted steps (the inverse
    /// of [`FittedPipeline::steps`]; used by the artifact codec).
    pub fn from_steps(steps: Vec<FittedPreproc>) -> FittedPipeline {
        FittedPipeline { steps }
    }

    /// Borrow the fitted steps in application order.
    pub fn steps(&self) -> &[FittedPreproc] {
        &self.steps
    }

    /// Transform features in place through every fitted step.
    pub fn transform(&self, x: &mut Matrix) {
        for step in &self.steps {
            step.transform(x);
        }
    }

    /// Transform into a new matrix.
    pub fn transform_new(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.transform(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preproc::Norm;

    #[test]
    fn empty_pipeline_is_identity() {
        let x = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        let (fitted, out) = Pipeline::empty().fit_transform(&x);
        assert_eq!(out, x);
        let mut v = x.clone();
        fitted.transform(&mut v);
        assert_eq!(v, x);
    }

    #[test]
    fn composition_order_matters() {
        // P1: MinMax -> Binarizer(0.5) vs P2: Binarizer(0.5) -> MinMax
        let x = Matrix::column_vector(&[0.0, 2.0, 10.0]);
        let p1 = Pipeline::new(vec![
            Preproc::MinMaxScaler,
            Preproc::Binarizer { threshold: 0.5 },
        ]);
        let p2 = Pipeline::new(vec![
            Preproc::Binarizer { threshold: 0.5 },
            Preproc::MinMaxScaler,
        ]);
        let (_, o1) = p1.fit_transform(&x);
        let (_, o2) = p2.fit_transform(&x);
        // p1: minmax -> [0, .2, 1] -> binarize(.5) -> [0,0,1]
        assert_eq!(o1.col(0), vec![0.0, 0.0, 1.0]);
        // p2: binarize(.5) -> [0,1,1] -> minmax -> [0,1,1]
        assert_eq!(o2.col(0), vec![0.0, 1.0, 1.0]);
        assert_ne!(o1.col(0), o2.col(0));
    }

    #[test]
    fn paper_example_p2_composition() {
        // §3.1 Example 3.2: PowerTransformer -> MinMaxScaler -> Normalizer
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 100.0], vec![3.0, 1000.0]]);
        let p = Pipeline::from_kinds(&[
            PreprocKind::PowerTransformer,
            PreprocKind::MinMaxScaler,
            PreprocKind::Normalizer,
        ]);
        let (fitted, out) = p.fit_transform(&x);
        assert!(out.is_finite());
        // Every row of the output has unit L2 norm (Normalizer is last).
        for row in out.rows_iter() {
            let n = autofp_linalg::matrix::norm_l2(row);
            assert!((n - 1.0).abs() < 1e-9 || n == 0.0);
        }
        // The fitted pipeline transforms unseen data consistently.
        let mut unseen = Matrix::from_rows(&[vec![1.5, 50.0]]);
        fitted.transform(&mut unseen);
        assert!(unseen.is_finite());
    }

    #[test]
    fn steps_fit_on_transformed_output() {
        // StandardScaler after MinMax must see the minmaxed data: the
        // fitted means must lie in [0, 1], not in the raw range.
        let x = Matrix::column_vector(&[0.0, 500.0, 1000.0]);
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::StandardScaler]);
        let (_, out) = p.fit_transform(&x);
        let col = out.col(0);
        assert!(autofp_linalg::stats::mean(&col).abs() < 1e-9);
        assert!((autofp_linalg::stats::std_dev(&col) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = Pipeline::from_kinds(&[PreprocKind::MinMaxScaler, PreprocKind::PowerTransformer]);
        assert_eq!(p.to_string(), "MinMaxScaler -> PowerTransformer");
        assert_eq!(Pipeline::empty().to_string(), "(identity)");
    }

    #[test]
    fn kinds_and_mutation_accessors() {
        let mut p = Pipeline::from_kinds(&[PreprocKind::Binarizer]);
        assert_eq!(p.kinds(), vec![PreprocKind::Binarizer]);
        p.push(Preproc::Normalizer { norm: Norm::L1 });
        p.set_step(0, Preproc::MaxAbsScaler);
        assert_eq!(p.kinds(), vec![PreprocKind::MaxAbsScaler, PreprocKind::Normalizer]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn key_distinguishes_parameters() {
        let a = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.0 }]);
        let b = Pipeline::new(vec![Preproc::Binarizer { threshold: 0.5 }]);
        assert_ne!(a.key(), b.key());
    }
}
