//! Exhaustive enumeration of the default pipeline space.
//!
//! The paper's motivating experiment (§2.2, Figure 2) enumerates every
//! pipeline of length at most 4 over the 7 default preprocessors —
//! `7 + 7² + 7³ + 7⁴ = 2800` pipelines. This module generates that
//! enumeration deterministically, in lexicographic order.

use crate::kinds::PreprocKind;
use crate::pipeline::Pipeline;

/// Number of pipelines of exactly length `len` over `k` symbols.
pub fn count_of_length(k: usize, len: usize) -> usize {
    k.pow(len as u32)
}

/// Total pipelines of length `1..=max_len` over `k` symbols.
pub fn total_count(k: usize, max_len: usize) -> usize {
    (1..=max_len).map(|l| count_of_length(k, l)).sum()
}

/// Enumerate all default-parameter pipelines of length `1..=max_len`,
/// shortest first, lexicographic within a length.
pub fn enumerate_pipelines(max_len: usize) -> Vec<Pipeline> {
    let k = PreprocKind::ALL.len();
    let mut out = Vec::with_capacity(total_count(k, max_len));
    for len in 1..=max_len {
        let mut digits = vec![0usize; len];
        loop {
            let kinds: Vec<PreprocKind> =
                digits.iter().map(|&d| PreprocKind::from_index(d)).collect();
            out.push(Pipeline::from_kinds(&kinds));
            // Increment base-k counter.
            let mut i = len;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                digits[i] += 1;
                if digits[i] < k {
                    break;
                }
                digits[i] = 0;
                if i == 0 {
                    break;
                }
            }
            if digits.iter().all(|&d| d == 0) {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        // §2.2: pipelines of length <= 4 over 7 preprocessors = 2800.
        assert_eq!(total_count(7, 4), 2800);
        assert_eq!(total_count(7, 7), 960_799); // "about 1 million" (§7.3)
        assert_eq!(count_of_length(7, 2), 49);
    }

    #[test]
    fn enumeration_is_complete_and_unique() {
        let all = enumerate_pipelines(3);
        assert_eq!(all.len(), 7 + 49 + 343);
        let mut keys: Vec<String> = all.iter().map(Pipeline::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), all.len());
    }

    #[test]
    fn order_is_shortest_first_lexicographic() {
        let all = enumerate_pipelines(2);
        assert_eq!(all[0].kinds(), vec![PreprocKind::Binarizer]);
        assert_eq!(all[6].kinds(), vec![PreprocKind::StandardScaler]);
        assert_eq!(all[7].kinds(), vec![PreprocKind::Binarizer, PreprocKind::Binarizer]);
        assert_eq!(
            all.last().unwrap().kinds(),
            vec![PreprocKind::StandardScaler, PreprocKind::StandardScaler]
        );
    }

    #[test]
    fn lengths_within_bounds() {
        for p in enumerate_pipelines(4) {
            assert!(!p.is_empty() && p.len() <= 4);
        }
    }
}
