//! Parameterized preprocessors and their fitted states.
//!
//! Each preprocessor follows scikit-learn's fit/transform contract: `fit`
//! learns column statistics from the *training* matrix, producing a
//! [`FittedPreproc`] that can then transform both the training and
//! validation matrices (the paper's pipeline-error definition, Eq. 2,
//! requires exactly this asymmetry).

use crate::kinds::PreprocKind;
use crate::power;
use crate::quantile;
use autofp_linalg::matrix::{norm_l1, norm_l2, norm_max};
use autofp_linalg::Matrix;
use std::fmt;

/// Row norm used by `Normalizer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Norm {
    /// Sum of absolute values.
    L1,
    /// Euclidean norm (scikit-learn default).
    L2,
    /// Largest absolute value.
    Max,
}

/// Output distribution of `QuantileTransformer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputDist {
    /// Quantile positions in [0, 1].
    Uniform,
    /// Quantile positions pushed through the inverse normal CDF.
    Normal,
}

/// A preprocessor specification: a kind plus concrete parameter values.
///
/// Defaults (via [`Preproc::default_for`]) match the scikit-learn
/// defaults the paper uses: `Binarizer(threshold=0)`, `Normalizer(l2)`,
/// `StandardScaler(with_mean=true)`, `PowerTransformer(standardize=true)`,
/// `QuantileTransformer(n_quantiles=1000, uniform)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Preproc {
    /// Values above `threshold` map to 1, others to 0.
    Binarizer {
        /// Decision threshold (paper default 0).
        threshold: f64,
    },
    /// Scale each column by its maximum absolute value.
    MaxAbsScaler,
    /// Scale each column to [0, 1] (paper default range).
    MinMaxScaler,
    /// Scale each row to unit `norm`.
    Normalizer {
        /// Row norm to normalize by.
        norm: Norm,
    },
    /// Yeo-Johnson transform, optionally standardized after.
    PowerTransformer {
        /// Standardize the transformed output (sklearn default true).
        standardize: bool,
    },
    /// Empirical-quantile map with `n_quantiles` references.
    QuantileTransformer {
        /// Number of reference quantiles (capped at the row count).
        n_quantiles: usize,
        /// Output distribution (uniform or normal).
        output: OutputDist,
    },
    /// Standardize (optionally without centering).
    StandardScaler {
        /// Subtract the mean before scaling (sklearn default true).
        with_mean: bool,
    },
}

impl Preproc {
    /// The scikit-learn-default parameterization of a kind.
    pub fn default_for(kind: PreprocKind) -> Preproc {
        match kind {
            PreprocKind::Binarizer => Preproc::Binarizer { threshold: 0.0 },
            PreprocKind::MaxAbsScaler => Preproc::MaxAbsScaler,
            PreprocKind::MinMaxScaler => Preproc::MinMaxScaler,
            PreprocKind::Normalizer => Preproc::Normalizer { norm: Norm::L2 },
            PreprocKind::PowerTransformer => Preproc::PowerTransformer { standardize: true },
            PreprocKind::QuantileTransformer => {
                Preproc::QuantileTransformer { n_quantiles: 1000, output: OutputDist::Uniform }
            }
            PreprocKind::StandardScaler => Preproc::StandardScaler { with_mean: true },
        }
    }

    /// The kind of this preprocessor.
    pub fn kind(&self) -> PreprocKind {
        match self {
            Preproc::Binarizer { .. } => PreprocKind::Binarizer,
            Preproc::MaxAbsScaler => PreprocKind::MaxAbsScaler,
            Preproc::MinMaxScaler => PreprocKind::MinMaxScaler,
            Preproc::Normalizer { .. } => PreprocKind::Normalizer,
            Preproc::PowerTransformer { .. } => PreprocKind::PowerTransformer,
            Preproc::QuantileTransformer { .. } => PreprocKind::QuantileTransformer,
            Preproc::StandardScaler { .. } => PreprocKind::StandardScaler,
        }
    }

    /// Fit this preprocessor on training features.
    pub fn fit(&self, x: &Matrix) -> FittedPreproc {
        let d = x.ncols();
        match self {
            Preproc::Binarizer { threshold } => FittedPreproc::Binarizer { threshold: *threshold },
            Preproc::Normalizer { norm } => FittedPreproc::Normalizer { norm: *norm },
            Preproc::MaxAbsScaler => {
                let mut scale = Vec::with_capacity(d);
                for j in 0..d {
                    let col = finite_col(x, j);
                    let m = norm_max(&col);
                    scale.push(if m > 0.0 { m } else { 1.0 });
                }
                FittedPreproc::MaxAbs { scale }
            }
            Preproc::MinMaxScaler => {
                let mut mins = Vec::with_capacity(d);
                let mut ranges = Vec::with_capacity(d);
                for j in 0..d {
                    let col = finite_col(x, j);
                    let mn = col.iter().copied().fold(f64::INFINITY, f64::min);
                    let mx = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let (mn, mx) = if mn.is_finite() { (mn, mx) } else { (0.0, 0.0) };
                    let range = mx - mn;
                    mins.push(mn);
                    ranges.push(if range > 0.0 { range } else { 1.0 });
                }
                FittedPreproc::MinMax { mins, ranges }
            }
            Preproc::StandardScaler { with_mean } => {
                let mut means = Vec::with_capacity(d);
                let mut stds = Vec::with_capacity(d);
                for j in 0..d {
                    let col = finite_col(x, j);
                    let m = autofp_linalg::stats::mean(&col);
                    let s = autofp_linalg::stats::std_dev(&col);
                    means.push(if *with_mean { m } else { 0.0 });
                    stds.push(if s > 0.0 { s } else { 1.0 });
                }
                FittedPreproc::Standard { means, stds }
            }
            Preproc::PowerTransformer { standardize } => {
                FittedPreproc::Power(power::FittedPower::fit(x, *standardize))
            }
            Preproc::QuantileTransformer { n_quantiles, output } => FittedPreproc::Quantile(
                quantile::FittedQuantile::fit(x, *n_quantiles, *output),
            ),
        }
    }

    /// Fit on `x` and transform it in place (the common training-side call).
    pub fn fit_transform(&self, x: &mut Matrix) -> FittedPreproc {
        let fitted = self.fit(x);
        fitted.transform(x);
        fitted
    }
}

impl fmt::Display for Preproc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Preproc::Binarizer { threshold } if *threshold == 0.0 => write!(f, "Binarizer"),
            Preproc::Binarizer { threshold } => write!(f, "Binarizer(threshold={threshold})"),
            Preproc::MaxAbsScaler => write!(f, "MaxAbsScaler"),
            Preproc::MinMaxScaler => write!(f, "MinMaxScaler"),
            Preproc::Normalizer { norm: Norm::L2 } => write!(f, "Normalizer"),
            Preproc::Normalizer { norm } => write!(f, "Normalizer(norm={norm:?})"),
            Preproc::PowerTransformer { standardize: true } => write!(f, "PowerTransformer"),
            Preproc::PowerTransformer { standardize } => {
                write!(f, "PowerTransformer(standardize={standardize})")
            }
            Preproc::QuantileTransformer { n_quantiles: 1000, output: OutputDist::Uniform } => {
                write!(f, "QuantileTransformer")
            }
            Preproc::QuantileTransformer { n_quantiles, output } => {
                write!(f, "QuantileTransformer(n_quantiles={n_quantiles}, output={output:?})")
            }
            Preproc::StandardScaler { with_mean: true } => write!(f, "StandardScaler"),
            Preproc::StandardScaler { with_mean } => {
                write!(f, "StandardScaler(with_mean={with_mean})")
            }
        }
    }
}

/// Fitted state of a preprocessor, ready to transform any matrix with the
/// same column count.
#[derive(Debug, Clone)]
pub enum FittedPreproc {
    /// Stateless threshold.
    Binarizer {
        /// Decision threshold.
        threshold: f64,
    },
    /// Per-column max-abs scale factors.
    MaxAbs {
        /// Divisor per column.
        scale: Vec<f64>,
    },
    /// Per-column minimum and range.
    MinMax {
        /// Fitted column minimums.
        mins: Vec<f64>,
        /// Fitted column ranges (1 for constant columns).
        ranges: Vec<f64>,
    },
    /// Stateless row normalizer.
    Normalizer {
        /// Row norm to normalize by.
        norm: Norm,
    },
    /// Per-column mean and standard deviation.
    Standard {
        /// Fitted column means (zero when `with_mean` was false).
        means: Vec<f64>,
        /// Fitted column standard deviations (1 for constant columns).
        stds: Vec<f64>,
    },
    /// Fitted Yeo-Johnson state.
    Power(power::FittedPower),
    /// Fitted quantile references.
    Quantile(quantile::FittedQuantile),
}

impl FittedPreproc {
    /// Transform a matrix in place.
    pub fn transform(&self, x: &mut Matrix) {
        match self {
            FittedPreproc::Binarizer { threshold } => {
                let t = *threshold;
                x.map_inplace(|v| if v > t { 1.0 } else { 0.0 });
            }
            FittedPreproc::MaxAbs { scale } => {
                apply_columnwise(x, |j, v| v / scale[j]);
            }
            FittedPreproc::MinMax { mins, ranges } => {
                apply_columnwise(x, |j, v| (v - mins[j]) / ranges[j]);
            }
            FittedPreproc::Standard { means, stds } => {
                apply_columnwise(x, |j, v| (v - means[j]) / stds[j]);
            }
            FittedPreproc::Normalizer { norm } => {
                let n_rows = x.nrows();
                for r in 0..n_rows {
                    let row = x.row_mut(r);
                    let nrm = match norm {
                        Norm::L1 => norm_l1(row),
                        Norm::L2 => norm_l2(row),
                        Norm::Max => norm_max(row),
                    };
                    if nrm > 0.0 {
                        for v in row {
                            *v /= nrm;
                        }
                    }
                }
            }
            FittedPreproc::Power(p) => p.transform(x),
            FittedPreproc::Quantile(q) => q.transform(x),
        }
    }
}

/// Column `j` with non-finite cells dropped (fit statistics must never
/// be poisoned by NaN/Inf; transform-side sanitization is the models'
/// job).
fn finite_col(x: &Matrix, j: usize) -> Vec<f64> {
    x.col(j).into_iter().filter(|v| v.is_finite()).collect()
}

#[inline]
fn apply_columnwise(x: &mut Matrix, f: impl Fn(usize, f64) -> f64) {
    let cols = x.ncols();
    for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
        *v = f(i % cols, *v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 example column from the paper.
    fn fig1() -> Matrix {
        Matrix::column_vector(&[-1.5, 1.0, 1.5, 2.5, 3.0, 4.0, 5.0])
    }

    fn transform_with(p: &Preproc, x: &Matrix) -> Vec<f64> {
        let mut m = x.clone();
        p.fit(x).transform(&mut m);
        m.col(0)
    }

    fn assert_close(actual: &[f64], expected: &[f64], tol: f64) {
        assert_eq!(actual.len(), expected.len());
        for (a, e) in actual.iter().zip(expected) {
            assert!((a - e).abs() <= tol, "{actual:?} vs {expected:?}");
        }
    }

    #[test]
    fn figure1_standard_scaler() {
        // Figure 1(b): [-1.87, -0.61, -0.36, 0.15, 0.40, 0.90, 1.41]
        let out = transform_with(&Preproc::StandardScaler { with_mean: true }, &fig1());
        assert_close(&out, &[-1.87, -0.61, -0.36, 0.15, 0.40, 0.90, 1.41], 0.01);
    }

    #[test]
    fn figure1_maxabs() {
        // Figure 1(c): [-0.3, 0.2, 0.3, 0.5, 0.6, 0.8, 1]
        let out = transform_with(&Preproc::MaxAbsScaler, &fig1());
        assert_close(&out, &[-0.3, 0.2, 0.3, 0.5, 0.6, 0.8, 1.0], 1e-9);
    }

    #[test]
    fn figure1_minmax() {
        // Figure 1(d): [0, 0.38, 0.46, 0.61, 0.69, 0.85, 1]
        let out = transform_with(&Preproc::MinMaxScaler, &fig1());
        assert_close(&out, &[0.0, 0.38, 0.46, 0.61, 0.69, 0.85, 1.0], 0.01);
    }

    #[test]
    fn figure1_normalizer() {
        // Figure 1(e): single-column rows scale to sign: [-1, 1, 1, 1, 1, 1, 1]
        let out = transform_with(&Preproc::Normalizer { norm: Norm::L2 }, &fig1());
        assert_close(&out, &[-1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 1e-9);
    }

    #[test]
    fn figure1_binarizer() {
        // Figure 1(h): [0, 1, 1, 1, 1, 1, 1]
        let out = transform_with(&Preproc::Binarizer { threshold: 0.0 }, &fig1());
        assert_close(&out, &[0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 1e-9);
    }

    #[test]
    fn figure1_quantile_uniform() {
        // Figure 1(g): [0, 1/6, 2/6, 3/6, 4/6, 5/6, 1]
        let p = Preproc::QuantileTransformer { n_quantiles: 1000, output: OutputDist::Uniform };
        let out = transform_with(&p, &fig1());
        let expected: Vec<f64> = (0..7).map(|i| i as f64 / 6.0).collect();
        assert_close(&out, &expected, 1e-6);
    }

    #[test]
    fn binarizer_threshold_strictly_greater() {
        // sklearn maps values <= threshold to 0.
        let x = Matrix::column_vector(&[-1.0, 0.0, 0.5]);
        let out = transform_with(&Preproc::Binarizer { threshold: 0.0 }, &x);
        assert_eq!(out, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn normalizer_l1_and_max() {
        let x = Matrix::from_rows(&[vec![3.0, -1.0]]);
        let mut m = x.clone();
        Preproc::Normalizer { norm: Norm::L1 }.fit(&x).transform(&mut m);
        assert_close(m.row(0), &[0.75, -0.25], 1e-12);
        let mut m = x.clone();
        Preproc::Normalizer { norm: Norm::Max }.fit(&x).transform(&mut m);
        assert_close(m.row(0), &[1.0, -1.0 / 3.0], 1e-12);
    }

    #[test]
    fn normalizer_zero_row_unchanged() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let out = transform_with(&Preproc::Normalizer { norm: Norm::L2 }, &x);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn standard_scaler_without_mean() {
        let x = Matrix::column_vector(&[2.0, 4.0]);
        let out = transform_with(&Preproc::StandardScaler { with_mean: false }, &x);
        // std = 1, values divided by std only.
        assert_close(&out, &[2.0, 4.0], 1e-12);
    }

    #[test]
    fn constant_column_is_safe_everywhere() {
        let x = Matrix::column_vector(&[5.0; 6]);
        for kind in PreprocKind::ALL {
            let p = Preproc::default_for(kind);
            let out = transform_with(&p, &x);
            assert!(out.iter().all(|v| v.is_finite()), "{kind} produced non-finite");
        }
    }

    #[test]
    fn fitted_state_applies_to_unseen_data() {
        // Fit MinMax on train, apply to valid with out-of-range values.
        let train = Matrix::column_vector(&[0.0, 10.0]);
        let fitted = Preproc::MinMaxScaler.fit(&train);
        let mut valid = Matrix::column_vector(&[-5.0, 5.0, 20.0]);
        fitted.transform(&mut valid);
        assert_close(&valid.col(0), &[-0.5, 0.5, 2.0], 1e-12);
    }

    #[test]
    fn default_display_names_match_paper() {
        for kind in PreprocKind::ALL {
            assert_eq!(Preproc::default_for(kind).to_string(), kind.name());
        }
        assert_eq!(
            Preproc::Binarizer { threshold: 0.4 }.to_string(),
            "Binarizer(threshold=0.4)"
        );
    }

    #[test]
    fn kind_roundtrip() {
        for kind in PreprocKind::ALL {
            assert_eq!(Preproc::default_for(kind).kind(), kind);
        }
    }
}
