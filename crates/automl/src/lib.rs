#![warn(missing_docs)]
//! AutoML-context comparators (§7 of the paper).
//!
//! The paper asks whether dedicated Auto-FP beats the feature
//! preprocessing modules of general-purpose AutoML tools (Table 8), and
//! whether FP matters as much as hyperparameter tuning. This crate
//! implements the comparators:
//!
//! * [`tpot::TpotFp`] — TPOT's FP module: genetic programming over its
//!   five preprocessors with arbitrary pipeline length.
//! * [`tpot::AutoSklearnFp`] — Auto-Sklearn's FP module: one of five
//!   single-preprocessor pipelines.
//! * [`hpo::HpoSearch`] — an HPO module searching each downstream
//!   model's hyperparameter space with the preprocessing disabled.
//!
//! Module-to-paper map:
//!
//! | Module | Paper section |
//! |---|---|
//! | [`tpot`] | §7.1 Auto-FP vs. AutoML FP modules (Table 8) |
//! | [`hpo`] | §7.2 FP vs. hyperparameter optimization |
//! | [`warmstart`] | §8 warm-starting search from meta-learned pipelines |
//!
//! [`tpot::TpotFp`] evaluates each GP generation through
//! [`autofp_core::SearchContext::evaluate_batch`]: children are bred
//! from the previous generation's fitness only, so a whole brood
//! evaluates in parallel (and re-proposed children hit an attached
//! [`autofp_core::EvalCache`]).

pub mod hpo;
pub mod tpot;
pub mod warmstart;

pub use hpo::{HpoOutcome, HpoSearch};
pub use tpot::{AutoSklearnFp, TpotFp, TPOT_PREPROCESSORS};
pub use warmstart::MetaStore;
