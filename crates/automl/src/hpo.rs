//! The HPO module of the §7.2 comparison: search a downstream model's
//! hyperparameter space (with feature preprocessing disabled), under the
//! same budget as Auto-FP.
//!
//! Hyperparameter candidates are sampled uniformly from per-model grids
//! patterned on TPOT's configuration for the corresponding estimator.

use autofp_core::{Budget, Trial};
use autofp_data::Split;
use autofp_models::classifier::{ModelKind, Trainer};
use autofp_models::gbdt::GbdtParams;
use autofp_models::linear::LogisticParams;
use autofp_models::metrics::accuracy;
use autofp_models::mlp::MlpParams;
use autofp_linalg::rng::rng_from_seed;
use rand::rngs::StdRng;
use rand::Rng;

/// Result of an HPO run.
#[derive(Debug, Clone)]
pub struct HpoOutcome {
    /// Best validation accuracy found.
    pub best_accuracy: f64,
    /// Human-readable description of the best configuration.
    pub best_config: String,
    /// Number of configurations evaluated.
    pub n_evals: usize,
}

/// Random-search HPO over one downstream model family.
pub struct HpoSearch {
    /// Downstream model family whose hyperparameters are searched.
    pub model: ModelKind,
    rng: StdRng,
}

impl HpoSearch {
    /// Construct an HPO searcher for one model family.
    pub fn new(model: ModelKind, seed: u64) -> HpoSearch {
        HpoSearch { model, rng: rng_from_seed(seed) }
    }

    /// Sample one hyperparameter configuration as a trainer.
    fn sample(&mut self) -> (Box<dyn Trainer>, String) {
        match self.model {
            ModelKind::Lr => {
                let lr = *pick(&mut self.rng, &[0.003, 0.01, 0.03, 0.1, 0.3]);
                let l2 = *pick(&mut self.rng, &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2]);
                let epochs = *pick(&mut self.rng, &[20, 40, 80, 120, 160]);
                let desc = format!("LR(lr={lr}, l2={l2}, epochs={epochs})");
                (
                    Box::new(LogisticParams {
                        learning_rate: lr,
                        l2,
                        max_epochs: epochs,
                        ..Default::default()
                    }),
                    desc,
                )
            }
            ModelKind::Xgb => {
                let rounds = *pick(&mut self.rng, &[10, 20, 30, 45, 60]);
                let depth = *pick(&mut self.rng, &[2, 3, 4, 6, 8]);
                let lr = *pick(&mut self.rng, &[0.05, 0.1, 0.2, 0.3, 0.5]);
                let subsample = *pick(&mut self.rng, &[0.5, 0.7, 0.85, 1.0]);
                let desc =
                    format!("XGB(rounds={rounds}, depth={depth}, eta={lr}, subsample={subsample})");
                (
                    Box::new(GbdtParams {
                        n_rounds: rounds,
                        max_depth: depth,
                        learning_rate: lr,
                        subsample,
                        ..Default::default()
                    }),
                    desc,
                )
            }
            ModelKind::Mlp => {
                let hidden = *pick(&mut self.rng, &[8, 16, 32, 64]);
                let lr = *pick(&mut self.rng, &[0.001, 0.003, 0.01, 0.03]);
                let epochs = *pick(&mut self.rng, &[10, 20, 30, 50]);
                let batch = *pick(&mut self.rng, &[16, 32, 64]);
                let desc =
                    format!("MLP(hidden={hidden}, lr={lr}, epochs={epochs}, batch={batch})");
                (
                    Box::new(MlpParams {
                        hidden,
                        learning_rate: lr,
                        max_epochs: epochs,
                        batch_size: batch,
                        ..Default::default()
                    }),
                    desc,
                )
            }
        }
    }

    /// Run HPO on a split (no preprocessing) under a budget.
    pub fn run(&mut self, split: &Split, budget: Budget) -> HpoOutcome {
        let mut clock = budget.start();
        let mut best_accuracy = 0.0;
        let mut best_config = String::from("(none)");
        let mut n_evals = 0;
        while !clock.exhausted() {
            let (trainer, desc) = self.sample();
            let model = trainer.fit(&split.train.x, &split.train.y, split.train.n_classes);
            let acc = accuracy(&split.valid.y, &model.predict(&split.valid.x));
            clock.note_eval(1.0);
            n_evals += 1;
            if acc > best_accuracy {
                best_accuracy = acc;
                best_config = desc;
            }
        }
        HpoOutcome { best_accuracy, best_config, n_evals }
    }
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

/// Convenience: the §7 three-way comparison row for one dataset and
/// model — Auto-FP best vs TPOT-FP best vs HPO best.
#[derive(Debug, Clone)]
pub struct ContextComparison {
    /// Dataset name.
    pub dataset: String,
    /// Downstream model family.
    pub model: ModelKind,
    /// Best validation accuracy of Auto-FP (PBT).
    pub auto_fp: f64,
    /// Best validation accuracy of TPOT's FP module.
    pub tpot_fp: f64,
    /// Best validation accuracy of the HPO module.
    pub hpo: f64,
    /// Validation accuracy without any preprocessing.
    pub no_fp: f64,
}

impl ContextComparison {
    /// Did Auto-FP win or tie against both comparators?
    pub fn auto_fp_wins(&self) -> bool {
        self.auto_fp >= self.tpot_fp && self.auto_fp >= self.hpo
    }
}

/// Helper to turn the best trial of a search into its accuracy (0 if
/// the search evaluated nothing).
pub fn best_of(trials: &[Trial]) -> f64 {
    trials.iter().map(|t| t.accuracy).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::SynthConfig;

    #[test]
    fn hpo_improves_over_first_sample_or_matches() {
        let d = SynthConfig::new("hpo-test", 200, 5, 2, 3).generate();
        let split = d.stratified_split(0.8, 0);
        let mut hpo = HpoSearch::new(ModelKind::Lr, 5);
        let out = hpo.run(&split, Budget::evals(6));
        assert_eq!(out.n_evals, 6);
        assert!(out.best_accuracy > 0.0);
        assert!(out.best_config.starts_with("LR("));
    }

    #[test]
    fn all_model_kinds_have_spaces() {
        let d = SynthConfig::new("hpo-all", 120, 4, 2, 7).generate();
        let split = d.stratified_split(0.8, 0);
        for model in ModelKind::ALL {
            let mut hpo = HpoSearch::new(model, 1);
            let out = hpo.run(&split, Budget::evals(2));
            assert_eq!(out.n_evals, 2, "{model}");
        }
    }

    #[test]
    fn hpo_is_deterministic() {
        let d = SynthConfig::new("hpo-det", 120, 4, 2, 9).generate();
        let split = d.stratified_split(0.8, 0);
        let a = HpoSearch::new(ModelKind::Xgb, 3).run(&split, Budget::evals(4)).best_accuracy;
        let b = HpoSearch::new(ModelKind::Xgb, 3).run(&split, Budget::evals(4)).best_accuracy;
        assert_eq!(a, b);
    }

    #[test]
    fn comparison_helpers() {
        let c = ContextComparison {
            dataset: "x".into(),
            model: ModelKind::Lr,
            auto_fp: 0.9,
            tpot_fp: 0.85,
            hpo: 0.88,
            no_fp: 0.8,
        };
        assert!(c.auto_fp_wins());
    }
}
