//! Warm-starting pipeline search from historical tasks (§8, research
//! opportunity 1).
//!
//! The paper observes that evolution-based algorithms dominate and asks
//! how to warm-start them: "the initial population of newly-coming tasks
//! can also be warm-started by historical tasks encoded by
//! meta-features". [`MetaStore`] implements exactly that: it records,
//! per finished task, the dataset's meta-feature vector and the best
//! pipelines found; for a new task it returns the best pipelines of the
//! most similar historical tasks (z-scored Euclidean meta-feature
//! distance), which seed `Pbt::seed_pipelines`.

use autofp_linalg::stats;
use autofp_preprocess::Pipeline;

/// One recorded task: meta-features and its best pipelines.
#[derive(Debug, Clone)]
struct Entry {
    meta: Vec<f64>,
    pipelines: Vec<Pipeline>,
    task: String,
}

/// A store of historical (meta-features -> best pipelines) records.
#[derive(Debug, Clone, Default)]
pub struct MetaStore {
    entries: Vec<Entry>,
}

impl MetaStore {
    /// An empty store.
    pub fn new() -> MetaStore {
        MetaStore::default()
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no task has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record a finished task.
    ///
    /// # Panics
    /// Panics if the meta-feature width disagrees with earlier records.
    pub fn record(&mut self, task: impl Into<String>, meta: Vec<f64>, pipelines: Vec<Pipeline>) {
        if let Some(first) = self.entries.first() {
            assert_eq!(first.meta.len(), meta.len(), "meta-feature width mismatch");
        }
        self.entries.push(Entry { meta, pipelines, task: task.into() });
    }

    /// Best pipelines of the `k` most similar historical tasks, closest
    /// first, flattened and deduplicated (per-task best first).
    pub fn warm_start(&self, meta: &[f64], k: usize) -> Vec<Pipeline> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        // z-score each meta-feature over the store (+query) so scale
        // differences between features don't dominate the distance.
        let d = meta.len();
        let mut means = vec![0.0; d];
        let mut stds = vec![0.0; d];
        for j in 0..d {
            let col: Vec<f64> = self
                .entries
                .iter()
                .map(|e| sanitized(e.meta[j]))
                .chain(std::iter::once(sanitized(meta[j])))
                .collect();
            means[j] = stats::mean(&col);
            stds[j] = stats::std_dev(&col).max(1e-9);
        }
        let dist = |a: &[f64]| -> f64 {
            a.iter()
                .zip(meta)
                .enumerate()
                .map(|(j, (&x, &y))| {
                    let dx = (sanitized(x) - means[j]) / stds[j];
                    let dy = (sanitized(y) - means[j]) / stds[j];
                    (dx - dy) * (dx - dy)
                })
                .sum::<f64>()
                .sqrt()
        };
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            // nan_largest: an entry with corrupt meta-features (NaN
            // distance) is ranked least similar instead of panicking.
            autofp_core::nan_largest(&dist(&self.entries[a].meta), &dist(&self.entries[b].meta))
        });
        let mut out: Vec<Pipeline> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &i in order.iter().take(k) {
            for p in &self.entries[i].pipelines {
                if seen.insert(p.key()) {
                    out.push(p.clone());
                }
            }
        }
        out
    }

    /// Names of recorded tasks (diagnostics).
    pub fn tasks(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.task.as_str()).collect()
    }
}

fn sanitized(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_preprocess::PreprocKind;

    fn pipe(kinds: &[PreprocKind]) -> Pipeline {
        Pipeline::from_kinds(kinds)
    }

    #[test]
    fn nearest_task_pipelines_come_first() {
        let mut store = MetaStore::new();
        store.record("near", vec![1.0, 2.0], vec![pipe(&[PreprocKind::StandardScaler])]);
        store.record("far", vec![100.0, -50.0], vec![pipe(&[PreprocKind::Binarizer])]);
        let warm = store.warm_start(&[1.1, 2.1], 1);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm[0].kinds(), vec![PreprocKind::StandardScaler]);
    }

    #[test]
    fn k_controls_breadth_and_dedup_applies() {
        let mut store = MetaStore::new();
        let shared = pipe(&[PreprocKind::Normalizer]);
        store.record("a", vec![0.0], vec![shared.clone(), pipe(&[PreprocKind::MinMaxScaler])]);
        store.record("b", vec![0.1], vec![shared.clone()]);
        let warm = store.warm_start(&[0.05], 2);
        // Duplicate Normalizer appears once.
        assert_eq!(warm.len(), 2);
    }

    #[test]
    fn empty_store_returns_nothing() {
        let store = MetaStore::new();
        assert!(store.warm_start(&[1.0], 3).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn scale_differences_do_not_dominate() {
        // Feature 0 has huge scale; feature 1 tiny but discriminative.
        let mut store = MetaStore::new();
        store.record("match", vec![1e6, 0.9], vec![pipe(&[PreprocKind::PowerTransformer])]);
        store.record("mismatch", vec![1.0001e6, 0.1], vec![pipe(&[PreprocKind::Binarizer])]);
        // Query: feature-0 halfway, feature-1 clearly like "match".
        let warm = store.warm_start(&[1.00005e6, 0.88], 1);
        assert_eq!(warm[0].kinds(), vec![PreprocKind::PowerTransformer]);
    }

    #[test]
    fn non_finite_meta_features_are_tolerated() {
        let mut store = MetaStore::new();
        store.record("t", vec![f64::NAN, 1.0], vec![pipe(&[PreprocKind::MaxAbsScaler])]);
        let warm = store.warm_start(&[f64::INFINITY, 1.0], 1);
        assert_eq!(warm.len(), 1);
    }

    #[test]
    #[should_panic(expected = "meta-feature width mismatch")]
    fn width_mismatch_panics() {
        let mut store = MetaStore::new();
        store.record("a", vec![1.0, 2.0], vec![]);
        store.record("b", vec![1.0], vec![]);
    }
}
