//! TPOT's and Auto-Sklearn's feature-preprocessing modules (Table 8).
//!
//! TPOT searches preprocessing pipelines of arbitrary length over five
//! preprocessors using genetic programming (tournament selection,
//! one-point crossover, point/insert/delete mutation). Auto-Sklearn's
//! FP module only ever applies a *single* preprocessor chosen from five.
//! Both are implemented as [`Searcher`]s so the §7.1 comparison runs on
//! the identical evaluator as Auto-FP.

use autofp_core::{nan_smallest, SearchContext, Searcher};
use autofp_linalg::rng::rng_from_seed;
use autofp_preprocess::{Pipeline, Preproc, PreprocKind};
use rand::rngs::StdRng;
use rand::Rng;

/// The five preprocessors TPOT's FP module exposes (of the paper's
/// seven, TPOT lacks `PowerTransformer` and `QuantileTransformer`).
pub const TPOT_PREPROCESSORS: [PreprocKind; 5] = [
    PreprocKind::Binarizer,
    PreprocKind::MaxAbsScaler,
    PreprocKind::MinMaxScaler,
    PreprocKind::Normalizer,
    PreprocKind::StandardScaler,
];

/// TPOT-FP: genetic programming over the five TPOT preprocessors.
pub struct TpotFp {
    rng: StdRng,
    /// Population size per generation.
    pub population_size: usize,
    /// Tournament size for parent selection.
    pub tournament_size: usize,
    /// Per-individual mutation probability.
    pub mutation_prob: f64,
    /// Per-pair crossover probability.
    pub crossover_prob: f64,
    /// Maximum pipeline length ("arbitrary" in TPOT; capped for sanity).
    pub max_len: usize,
}

impl TpotFp {
    /// Construct with TPOT-like GP defaults.
    pub fn new(seed: u64) -> TpotFp {
        TpotFp {
            rng: rng_from_seed(seed),
            population_size: 12,
            tournament_size: 3,
            mutation_prob: 0.9,
            crossover_prob: 0.5,
            max_len: 8,
        }
    }

    fn random_pipeline(&mut self) -> Pipeline {
        let len = self.rng.gen_range(1..=3);
        let kinds: Vec<PreprocKind> = (0..len)
            .map(|_| TPOT_PREPROCESSORS[self.rng.gen_range(0..TPOT_PREPROCESSORS.len())])
            .collect();
        Pipeline::from_kinds(&kinds)
    }

    fn mutate(&mut self, p: &Pipeline) -> Pipeline {
        let mut steps = p.steps().to_vec();
        match self.rng.gen_range(0..3) {
            0 => {
                // Point mutation.
                let pos = self.rng.gen_range(0..steps.len());
                steps[pos] = Preproc::default_for(
                    TPOT_PREPROCESSORS[self.rng.gen_range(0..TPOT_PREPROCESSORS.len())],
                );
            }
            1 if steps.len() < self.max_len => {
                let pos = self.rng.gen_range(0..=steps.len());
                steps.insert(
                    pos,
                    Preproc::default_for(
                        TPOT_PREPROCESSORS[self.rng.gen_range(0..TPOT_PREPROCESSORS.len())],
                    ),
                );
            }
            _ if steps.len() > 1 => {
                let pos = self.rng.gen_range(0..steps.len());
                steps.remove(pos);
            }
            _ => {}
        }
        Pipeline::new(steps)
    }

    /// One-point crossover of two pipelines.
    fn crossover(&mut self, a: &Pipeline, b: &Pipeline) -> Pipeline {
        let cut_a = self.rng.gen_range(0..=a.len());
        let cut_b = self.rng.gen_range(0..=b.len());
        let mut steps: Vec<Preproc> = a.steps()[..cut_a].to_vec();
        steps.extend_from_slice(&b.steps()[cut_b..]);
        steps.truncate(self.max_len);
        if steps.is_empty() {
            steps.push(Preproc::default_for(PreprocKind::StandardScaler));
        }
        Pipeline::new(steps)
    }
}

impl Searcher for TpotFp {
    fn name(&self) -> &'static str {
        "TPOT-FP"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        // Initial population: independent random draws, evaluated as one
        // parallel batch.
        let init: Vec<Pipeline> =
            (0..self.population_size).map(|_| self.random_pipeline()).collect();
        let Some(trials) = ctx.evaluate_batch(&init) else { return };
        if trials.len() < init.len() {
            return; // budget tripped before a full population
        }
        let mut population: Vec<(Pipeline, f64)> =
            init.into_iter().zip(trials.iter().map(|t| t.accuracy)).collect();

        loop {
            if ctx.exhausted() {
                return;
            }
            // Breed the next generation (elitism: keep the best). Every
            // child is bred from the *previous* generation's fitness, so
            // the whole brood is proposed first and evaluated as one
            // batch — GP's classic generation-level parallelism.
            population.sort_by(|a, b| nan_smallest(&b.1, &a.1));
            let mut brood: Vec<Pipeline> = Vec::with_capacity(self.population_size - 1);
            while brood.len() + 1 < self.population_size {
                // Tournament selection of two parents.
                let pick = |rng: &mut StdRng, pop: &[(Pipeline, f64)], k: usize| {
                    let mut best: Option<(f64, Pipeline)> = None;
                    for _ in 0..k {
                        let i = rng.gen_range(0..pop.len());
                        if best.as_ref().is_none_or(|(acc, _)| pop[i].1 > *acc) {
                            best = Some((pop[i].1, pop[i].0.clone()));
                        }
                    }
                    best.expect("non-empty population").1
                };
                let pa = pick(&mut self.rng, &population, self.tournament_size);
                let pb = pick(&mut self.rng, &population, self.tournament_size);
                let mut child = if self.rng.gen::<f64>() < self.crossover_prob {
                    self.crossover(&pa, &pb)
                } else {
                    pa
                };
                if self.rng.gen::<f64>() < self.mutation_prob {
                    child = self.mutate(&child);
                }
                brood.push(child);
            }
            let Some(trials) = ctx.evaluate_batch(&brood) else { return };
            let complete = trials.len() == brood.len();
            let mut next: Vec<(Pipeline, f64)> = vec![population[0].clone()];
            next.extend(brood.into_iter().zip(trials.iter().map(|t| t.accuracy)));
            population = next;
            if !complete {
                return; // budget tripped mid-generation
            }
        }
    }
}

/// Auto-Sklearn's FP module: a single preprocessor from five candidates
/// (pipeline length exactly 1, per Table 8), chosen by trying each —
/// with only six possibilities (five preprocessors plus "none"), its
/// SMAC search degenerates to enumeration.
pub struct AutoSklearnFp;

impl Searcher for AutoSklearnFp {
    fn name(&self) -> &'static str {
        "AutoSklearn-FP"
    }

    fn search(&mut self, ctx: &mut SearchContext) {
        // The whole six-option space is fixed up front — evaluate it as
        // one parallel batch. Space exhausted afterwards; nothing more a
        // single-preprocessor module can try.
        let mut options = vec![Pipeline::empty()];
        options.extend(TPOT_PREPROCESSORS.iter().map(|&k| Pipeline::from_kinds(&[k])));
        ctx.evaluate_batch(&options);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_core::{run_search, Budget, EvalConfig, Evaluator};
    use autofp_data::SynthConfig;

    fn evaluator() -> Evaluator {
        let d = SynthConfig::new("tpot-test", 150, 5, 2, 3).generate();
        Evaluator::new(&d, EvalConfig::default())
    }

    #[test]
    fn tpot_only_uses_its_five_preprocessors() {
        let ev = evaluator();
        let mut tpot = TpotFp::new(7);
        let out = run_search(&mut tpot, &ev, Budget::evals(30));
        assert_eq!(out.history.len(), 30);
        for t in out.history.trials() {
            for s in t.pipeline.steps() {
                assert!(
                    TPOT_PREPROCESSORS.contains(&s.kind()),
                    "TPOT used {}",
                    s.kind()
                );
            }
        }
    }

    #[test]
    fn tpot_is_deterministic() {
        let ev = evaluator();
        let run = || {
            let mut t = TpotFp::new(9);
            run_search(&mut t, &ev, Budget::evals(20)).best_accuracy()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn autosklearn_fp_tries_six_options_then_stops() {
        let ev = evaluator();
        let mut ask = AutoSklearnFp;
        let out = run_search(&mut ask, &ev, Budget::evals(100));
        assert_eq!(out.history.len(), 6);
        for t in out.history.trials() {
            assert!(t.pipeline.len() <= 1);
        }
    }

    #[test]
    fn crossover_respects_length_cap() {
        let mut tpot = TpotFp::new(1);
        let a = Pipeline::from_kinds(&[PreprocKind::Binarizer; 8]);
        let b = Pipeline::from_kinds(&[PreprocKind::Normalizer; 8]);
        for _ in 0..50 {
            let c = tpot.crossover(&a, &b);
            assert!(!c.is_empty() && c.len() <= 8);
        }
    }
}
