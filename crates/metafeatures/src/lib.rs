#![warn(missing_docs)]
//! The 40 dataset meta-features of Auto-Sklearn, as used by the paper's
//! §2.2 data-characteristics experiment (Table 10).
//!
//! Four groups: *simple* (shape, missing values, symbol counts),
//! *statistical* (per-column skewness/kurtosis, class probabilities,
//! PCA summaries), *information-theoretic* (class entropy), and
//! *landmarkers* (5-fold CV scores of six quick learners). The paper
//! trains a depth-limited decision tree on these 40 features to test
//! whether any "data characteristic rule" predicts FP effectiveness
//! (Table 1) — and finds none.

use autofp_data::Dataset;
use autofp_linalg::pca::Pca;
use autofp_linalg::rng::derive_seed;
use autofp_linalg::stats;
use autofp_models::cv::cross_val_accuracy;
use autofp_models::simple::{GaussianNbParams, KnnParams, LdaParams};
use autofp_models::tree::DecisionTreeParams;

/// Names of the 40 meta-features, in extraction order (Table 10 order).
pub const NAMES: [&str; 40] = [
    // Simple (18)
    "NumberOfMissingValues",
    "PercentageOfMissingValues",
    "NumberOfFeaturesWithMissingValues",
    "PercentageOfFeaturesWithMissingValues",
    "NumberOfInstancesWithMissingValues",
    "PercentageOfInstancesWithMissingValues",
    "NumberOfFeatures",
    "LogNumberOfFeatures",
    "NumberOfClasses",
    "DatasetRatio",
    "LogDatasetRatio",
    "InverseDatasetRatio",
    "LogInverseDatasetRatio",
    "SymbolsSum",
    "SymbolsSTD",
    "SymbolsMean",
    "SymbolsMax",
    "SymbolsMin",
    // Statistical (15)
    "SkewnessSTD",
    "SkewnessMean",
    "SkewnessMax",
    "SkewnessMin",
    "KurtosisSTD",
    "KurtosisMean",
    "KurtosisMax",
    "KurtosisMin",
    "ClassProbabilitySTD",
    "ClassProbabilityMean",
    "ClassProbabilityMax",
    "ClassProbabilityMin",
    "PCASkewnessFirstPC",
    "PCAKurtosisFirstPC",
    "PCAFractionOfComponentsFor95PercentVariance",
    // Information-theoretic (1)
    "ClassEntropy",
    // Landmarkers (6)
    "Landmark1NN",
    "LandmarkRandomNodeLearner",
    "LandmarkDecisionNodeLearner",
    "LandmarkDecisionTree",
    "LandmarkNaiveBayes",
    "LandmarkLDA",
];

/// Extraction limits: large datasets are stratified-subsampled before
/// the quadratic-ish parts (PCA, landmarkers), as Auto-Sklearn does.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Row cap for landmarkers and PCA.
    pub max_rows: usize,
    /// Feature cap for the PCA summaries.
    pub max_pca_features: usize,
    /// CV folds for the landmarkers (Auto-Sklearn uses 5).
    pub folds: usize,
    /// Seed for subsampling and landmarker folds.
    pub seed: u64,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig { max_rows: 1500, max_pca_features: 64, folds: 5, seed: 0 }
    }
}

/// The extracted meta-feature vector.
#[derive(Debug, Clone)]
pub struct MetaFeatures {
    values: Vec<f64>,
}

impl MetaFeatures {
    /// Value by meta-feature name.
    pub fn get(&self, name: &str) -> Option<f64> {
        NAMES.iter().position(|&n| n == name).map(|i| self.values[i])
    }

    /// The full 40-vector, ordered as [`NAMES`].
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Extract all 40 meta-features.
pub fn extract(dataset: &Dataset, config: &ExtractConfig) -> MetaFeatures {
    let mut v = Vec::with_capacity(40);
    let n = dataset.n_rows();
    let d = dataset.n_cols();
    let nf = n.max(1) as f64;
    let df = d.max(1) as f64;

    // --- Simple: missing values (NaN cells). ---
    let mut missing_cells = 0usize;
    let mut cols_with_missing = vec![false; d];
    let mut rows_with_missing = 0usize;
    for row in dataset.x.rows_iter() {
        let mut row_has = false;
        for (j, &val) in row.iter().enumerate() {
            if val.is_nan() {
                missing_cells += 1;
                cols_with_missing[j] = true;
                row_has = true;
            }
        }
        if row_has {
            rows_with_missing += 1;
        }
    }
    let n_cols_missing = cols_with_missing.iter().filter(|&&b| b).count();
    v.push(missing_cells as f64);
    v.push(missing_cells as f64 / (nf * df));
    v.push(n_cols_missing as f64);
    v.push(n_cols_missing as f64 / df);
    v.push(rows_with_missing as f64);
    v.push(rows_with_missing as f64 / nf);

    // --- Simple: shape. ---
    v.push(df);
    v.push(df.ln());
    v.push(dataset.n_classes as f64);
    let ratio = df / nf;
    v.push(ratio);
    v.push(ratio.ln());
    v.push(1.0 / ratio);
    v.push((1.0 / ratio).ln());

    // --- Simple: symbols (unique values per feature). ---
    let uniques: Vec<f64> = (0..d)
        .map(|j| {
            let mut col = dataset.x.col(j);
            col.retain(|x| !x.is_nan());
            col.sort_by(f64::total_cmp);
            col.dedup();
            col.len() as f64
        })
        .collect();
    v.push(uniques.iter().sum());
    v.push(stats::std_dev(&uniques));
    v.push(stats::mean(&uniques));
    v.push(stats::max(&uniques));
    v.push(stats::min(&uniques));

    // --- Statistical: skewness and kurtosis per column. ---
    let skews: Vec<f64> = (0..d).map(|j| stats::skewness(&dataset.x.col(j))).collect();
    let kurts: Vec<f64> = (0..d).map(|j| stats::kurtosis(&dataset.x.col(j))).collect();
    v.push(stats::std_dev(&skews));
    v.push(stats::mean(&skews));
    v.push(stats::max(&skews));
    v.push(stats::min(&skews));
    v.push(stats::std_dev(&kurts));
    v.push(stats::mean(&kurts));
    v.push(stats::max(&kurts));
    v.push(stats::min(&kurts));

    // --- Statistical: class probabilities. ---
    let counts = dataset.class_counts();
    let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / nf).collect();
    v.push(stats::std_dev(&probs));
    v.push(stats::mean(&probs));
    v.push(stats::max(&probs));
    v.push(stats::min(&probs));

    // --- Statistical: PCA summaries on a (possibly) subsampled view. ---
    let sub = dataset.subsample(config.max_rows, derive_seed(config.seed, 1));
    let pca_view = if sub.n_cols() > config.max_pca_features {
        let cols: Vec<usize> = (0..config.max_pca_features)
            .map(|i| i * sub.n_cols() / config.max_pca_features)
            .collect();
        sub.x.select_cols(&cols)
    } else {
        sub.x.clone()
    };
    let pca = Pca::fit(&pca_view, pca_view.ncols().min(24));
    let proj = pca.project_first(&pca_view);
    v.push(stats::skewness(&proj));
    v.push(stats::kurtosis(&proj));
    v.push(pca.fraction_for_variance(0.95, pca_view.ncols()));

    // --- Information-theoretic: class entropy. ---
    v.push(stats::entropy_from_counts(&counts));

    // --- Landmarkers: k-fold CV of six quick learners. ---
    let lm_seed = derive_seed(config.seed, 2);
    let folds = config.folds.max(2);
    let knn = KnnParams { k: 1 };
    v.push(cross_val_accuracy(&knn, &sub, folds, lm_seed));
    let random_node = DecisionTreeParams {
        max_depth: Some(1),
        max_features: Some(1),
        seed: derive_seed(config.seed, 3),
        ..Default::default()
    };
    v.push(cross_val_accuracy(&random_node, &sub, folds, lm_seed));
    let decision_node = DecisionTreeParams { max_depth: Some(1), ..Default::default() };
    v.push(cross_val_accuracy(&decision_node, &sub, folds, lm_seed));
    let tree = DecisionTreeParams { max_depth: Some(10), ..Default::default() };
    v.push(cross_val_accuracy(&tree, &sub, folds, lm_seed));
    v.push(cross_val_accuracy(&GaussianNbParams, &sub, folds, lm_seed));
    v.push(cross_val_accuracy(&LdaParams, &sub, folds, lm_seed));

    debug_assert_eq!(v.len(), NAMES.len());
    MetaFeatures { values: v }
}

/// Build a meta-dataset: one row of meta-features per input dataset,
/// with the caller's binary labels (the §2.2 "does FP help" labels).
pub fn meta_dataset(
    datasets: &[(Dataset, usize)],
    config: &ExtractConfig,
) -> autofp_data::Dataset {
    assert!(!datasets.is_empty());
    let rows: Vec<Vec<f64>> = datasets
        .iter()
        .map(|(d, _)| extract(d, config).as_slice().to_vec())
        .collect();
    let y: Vec<usize> = datasets.iter().map(|(_, label)| *label).collect();
    let n_classes = y.iter().max().unwrap() + 1;
    autofp_data::Dataset::new(
        "meta",
        autofp_linalg::Matrix::from_rows(&rows),
        y,
        n_classes.max(2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::SynthConfig;

    fn toy() -> Dataset {
        SynthConfig::new("mf", 200, 6, 3, 7).generate()
    }

    #[test]
    fn extracts_exactly_forty() {
        let mf = extract(&toy(), &ExtractConfig::default());
        assert_eq!(mf.as_slice().len(), 40);
        assert_eq!(NAMES.len(), 40);
    }

    #[test]
    fn simple_features_match_shape() {
        let d = toy();
        let mf = extract(&d, &ExtractConfig::default());
        assert_eq!(mf.get("NumberOfFeatures"), Some(6.0));
        assert_eq!(mf.get("NumberOfClasses"), Some(3.0));
        assert_eq!(mf.get("NumberOfMissingValues"), Some(0.0));
        let ratio = mf.get("DatasetRatio").unwrap();
        assert!((ratio - 6.0 / 200.0).abs() < 1e-12);
        assert!((mf.get("InverseDatasetRatio").unwrap() - 200.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn missing_values_are_counted() {
        let mut d = toy();
        d.x.set(0, 0, f64::NAN);
        d.x.set(1, 0, f64::NAN);
        d.x.set(0, 2, f64::NAN);
        let mf = extract(&d, &ExtractConfig::default());
        assert_eq!(mf.get("NumberOfMissingValues"), Some(3.0));
        assert_eq!(mf.get("NumberOfFeaturesWithMissingValues"), Some(2.0));
        assert_eq!(mf.get("NumberOfInstancesWithMissingValues"), Some(2.0));
    }

    #[test]
    fn class_probabilities_sum_to_one() {
        let mf = extract(&toy(), &ExtractConfig::default());
        let mean = mf.get("ClassProbabilityMean").unwrap();
        assert!((mean - 1.0 / 3.0).abs() < 1e-9);
        assert!(mf.get("ClassProbabilityMax").unwrap() >= mean);
        assert!(mf.get("ClassProbabilityMin").unwrap() <= mean);
    }

    #[test]
    fn entropy_of_balanced_binary_is_ln2() {
        let d = SynthConfig::new("mf-bal", 300, 4, 2, 5)
            .with_personality(autofp_data::Personality {
                imbalance: 0.0,
                label_noise: 0.0,
                ..Default::default()
            })
            .generate();
        let mf = extract(&d, &ExtractConfig::default());
        let h = mf.get("ClassEntropy").unwrap();
        assert!((h - (2.0_f64).ln()).abs() < 0.02, "entropy {h}");
    }

    #[test]
    fn landmarkers_are_valid_accuracies() {
        let mf = extract(&toy(), &ExtractConfig::default());
        for name in [
            "Landmark1NN",
            "LandmarkRandomNodeLearner",
            "LandmarkDecisionNodeLearner",
            "LandmarkDecisionTree",
            "LandmarkNaiveBayes",
            "LandmarkLDA",
        ] {
            let s = mf.get(name).unwrap();
            assert!((0.0..=1.0).contains(&s), "{name} = {s}");
        }
        // The full decision tree should roughly match or beat the single
        // random node on separable-ish synthetic data.
        assert!(
            mf.get("LandmarkDecisionTree").unwrap()
                >= mf.get("LandmarkRandomNodeLearner").unwrap() - 0.05
        );
    }

    #[test]
    fn extraction_is_deterministic() {
        let d = toy();
        let a = extract(&d, &ExtractConfig::default());
        let b = extract(&d, &ExtractConfig::default());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn meta_dataset_builds() {
        let d1 = SynthConfig::new("m1", 100, 4, 2, 1).generate();
        let d2 = SynthConfig::new("m2", 100, 5, 2, 2).generate();
        let meta = meta_dataset(&[(d1, 1), (d2, 0)], &ExtractConfig::default());
        assert_eq!(meta.x.shape(), (2, 40));
        assert_eq!(meta.y, vec![1, 0]);
    }

    #[test]
    fn skewed_dataset_has_higher_skew_mean() {
        let mut p = autofp_data::Personality::default();
        p.skew = 1.0;
        let skewed = SynthConfig::new("mf-skew", 400, 6, 2, 9).with_personality(p).generate();
        let mut p2 = autofp_data::Personality::default();
        p2.skew = 0.0;
        let normal = SynthConfig::new("mf-norm", 400, 6, 2, 9).with_personality(p2).generate();
        let cfg = ExtractConfig::default();
        let s1 = extract(&skewed, &cfg).get("SkewnessMean").unwrap();
        let s2 = extract(&normal, &cfg).get("SkewnessMean").unwrap();
        assert!(s1 > s2 + 0.5, "skewed {s1} vs normal {s2}");
    }
}
