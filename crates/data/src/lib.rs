#![warn(missing_docs)]
//! Tabular dataset substrate for Auto-FP.
//!
//! The original study evaluates on 45 public datasets (AutoML challenge,
//! OpenML, Kaggle — Table 9 of the paper). Those files are not available
//! offline, so this crate provides the substitution documented in
//! DESIGN.md: a synthetic classification-data generator whose knobs map
//! directly onto the properties feature preprocessing interacts with
//! (feature scale spread, skew, heavy tails, sparsity, class separation,
//! label noise), plus a [`registry()`] list of 45 dataset *specs* that mirror the
//! paper's table — same names, column counts, class counts, and
//! (scalable) row counts.

pub mod csv;
pub mod impute;
pub mod dataset;
pub mod registry;
pub mod synth;

pub use dataset::{Dataset, Split};
pub use impute::{impute_dataset, FittedImputer, ImputeStrategy};
pub use registry::{registry, spec_by_name, DatasetSpec};
pub use synth::{Personality, SynthConfig};
