//! Missing-value imputation.
//!
//! The paper's datasets are pre-cleaned numerical tables, but real CSVs
//! carry NaN cells (and the meta-features of Table 10 explicitly count
//! them). Before searching pipelines on such data, impute: the seven
//! preprocessors define their fit statistics over finite values only,
//! but downstream models see every cell. Mean/median imputation is the
//! scikit-learn `SimpleImputer` analogue.

use crate::dataset::Dataset;
use autofp_linalg::stats;
use autofp_linalg::Matrix;

/// Imputation strategy for non-finite cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeStrategy {
    /// Replace with the column mean of finite values.
    Mean,
    /// Replace with the column median of finite values.
    Median,
    /// Replace with a constant.
    Zero,
}

/// Fitted per-column fill values.
#[derive(Debug, Clone)]
pub struct FittedImputer {
    fill: Vec<f64>,
}

impl FittedImputer {
    /// Learn fill values from the finite cells of `x`. Columns with no
    /// finite value fill with 0.
    pub fn fit(x: &Matrix, strategy: ImputeStrategy) -> FittedImputer {
        let fill = (0..x.ncols())
            .map(|j| {
                let col: Vec<f64> = x.col(j).into_iter().filter(|v| v.is_finite()).collect();
                if col.is_empty() {
                    return 0.0;
                }
                match strategy {
                    ImputeStrategy::Mean => stats::mean(&col),
                    ImputeStrategy::Median => stats::median(&col),
                    ImputeStrategy::Zero => 0.0,
                }
            })
            .collect();
        FittedImputer { fill }
    }

    /// Replace every non-finite cell in place.
    pub fn transform(&self, x: &mut Matrix) {
        let cols = x.ncols();
        assert_eq!(cols, self.fill.len(), "column count mismatch");
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            if !v.is_finite() {
                *v = self.fill[i % cols];
            }
        }
    }

    /// The learned fill value per column.
    pub fn fill_values(&self) -> &[f64] {
        &self.fill
    }
}

/// Convenience: impute a whole dataset (fit + transform on the same
/// data; call before splitting — leakage through column means of
/// missing cells is negligible and matches common practice).
pub fn impute_dataset(dataset: &Dataset, strategy: ImputeStrategy) -> Dataset {
    let imputer = FittedImputer::fit(&dataset.x, strategy);
    let mut x = dataset.x.clone();
    imputer.transform(&mut x);
    dataset.with_features(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holey() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, f64::NAN],
            vec![3.0, 10.0],
            vec![f64::INFINITY, 20.0],
            vec![5.0, 30.0],
        ])
    }

    #[test]
    fn mean_imputation_uses_finite_mean() {
        let x = holey();
        let imp = FittedImputer::fit(&x, ImputeStrategy::Mean);
        assert_eq!(imp.fill_values(), &[3.0, 20.0]);
        let mut m = x.clone();
        imp.transform(&mut m);
        assert!(m.is_finite());
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(0, 1), 20.0);
    }

    #[test]
    fn median_imputation() {
        let x = Matrix::column_vector(&[1.0, f64::NAN, 100.0, 2.0]);
        let imp = FittedImputer::fit(&x, ImputeStrategy::Median);
        assert_eq!(imp.fill_values(), &[2.0]);
    }

    #[test]
    fn zero_strategy_and_all_missing_column() {
        let x = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![f64::NAN, 2.0]]);
        let imp = FittedImputer::fit(&x, ImputeStrategy::Mean);
        assert_eq!(imp.fill_values()[0], 0.0);
        let imp0 = FittedImputer::fit(&x, ImputeStrategy::Zero);
        assert_eq!(imp0.fill_values(), &[0.0, 0.0]);
    }

    #[test]
    fn finite_cells_are_untouched() {
        let x = holey();
        let imp = FittedImputer::fit(&x, ImputeStrategy::Mean);
        let mut m = x.clone();
        imp.transform(&mut m);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(3, 1), 30.0);
    }

    #[test]
    fn impute_dataset_roundtrip() {
        let mut d = crate::synth::SynthConfig::new("imp", 50, 4, 2, 3).generate();
        d.x.set(0, 0, f64::NAN);
        d.x.set(5, 2, f64::NEG_INFINITY);
        let clean = impute_dataset(&d, ImputeStrategy::Median);
        assert!(clean.x.is_finite());
        assert_eq!(clean.y, d.y);
        assert_eq!(clean.n_rows(), 50);
    }
}
