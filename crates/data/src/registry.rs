//! Registry of the 45 benchmark datasets (Table 9 of the paper).
//!
//! Each entry mirrors the paper's reported name, on-disk size, row count,
//! column count, and class count, and attaches a synthetic
//! [`Personality`] chosen so that the *qualitative* behaviour matches
//! what the paper observed on the real dataset: datasets on which FP gave
//! large gains for scale-sensitive models (heart, pd, hill, EEG, ...) get
//! strong scale spread/skew; datasets where FP barely moved the needle
//! (isolet, har, ...) are generated nearly homogeneous. Absolute accuracy
//! values are not expected to match the paper — see DESIGN.md.

use crate::dataset::Dataset;
use crate::synth::{Personality, SynthConfig};
use autofp_linalg::rng::derive_seed;

/// Specification of one benchmark dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Name as reported in Table 9.
    pub name: &'static str,
    /// On-disk size in MB as reported in Table 9 (drives the Table 5
    /// small/medium/large bucketing).
    pub size_mb: f64,
    /// Full row count as reported in Table 9.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Class count.
    pub classes: usize,
    /// Synthetic distributional personality (see module docs).
    pub personality: Personality,
}

impl DatasetSpec {
    /// Generate the dataset at a row-count scale in `(0, 1]`.
    ///
    /// `scale = 1.0` reproduces the full Table 9 row count; experiments
    /// use smaller scales to fit laptop budgets. At least `8 * classes`
    /// rows are always generated.
    pub fn generate(&self, scale: f64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let rows = ((self.rows as f64 * scale).round() as usize).max(8 * self.classes);
        let seed = derive_seed(0xA07F, fnv1a(self.name));
        SynthConfig::new(self.name, rows.min(self.rows), self.cols, self.classes, seed)
            .with_personality(self.personality)
            .generate()
    }

    /// High-dimensional per the paper's Table 5 rule (> 100 columns).
    pub fn is_high_dimensional(&self) -> bool {
        self.cols > 100
    }

    /// Paper's Table 5 size bucket for low-dimensional datasets:
    /// `"small"` (≤ 1.6 MB), `"medium"` (≤ 4 MB) or `"large"`.
    pub fn size_bucket(&self) -> &'static str {
        if self.size_mb <= 1.6 {
            "small"
        } else if self.size_mb <= 4.0 {
            "medium"
        } else {
            "large"
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn pers(
    scale_spread: f64,
    skew: f64,
    heavy_tail: f64,
    sparsity: f64,
    class_sep: f64,
    label_noise: f64,
    informative_frac: f64,
    imbalance: f64,
) -> Personality {
    Personality {
        scale_spread,
        skew,
        heavy_tail,
        sparsity,
        class_sep,
        label_noise,
        informative_frac,
        imbalance,
    }
}

/// The 45 dataset specs of Table 9.
pub fn registry() -> Vec<DatasetSpec> {
    let mut v = Vec::with_capacity(45);
    let mut add = |name: &'static str,
                   size_mb: f64,
                   rows: usize,
                   cols: usize,
                   classes: usize,
                   p: Personality| {
        v.push(DatasetSpec { name, size_mb, rows, cols, classes, personality: p });
    };

    // name, size MB, rows, cols, classes — all from Table 9.
    add("ada", 0.34, 3317, 48, 2, pers(2.5, 0.35, 0.2, 0.05, 1.1, 0.08, 0.5, 0.3));
    add("austrilian", 0.02, 552, 14, 2, pers(3.0, 0.4, 0.1, 0.0, 1.2, 0.07, 0.6, 0.2));
    add("blood", 0.01, 598, 4, 2, pers(2.0, 0.5, 0.2, 0.0, 0.9, 0.12, 0.8, 0.5));
    add("christine", 32.5, 4334, 1636, 2, pers(2.0, 0.3, 0.1, 0.2, 0.8, 0.1, 0.2, 0.0));
    add("Click_prediction_small", 2.4, 31958, 11, 2, pers(3.0, 0.6, 0.3, 0.2, 0.5, 0.1, 0.7, 0.9));
    add("covtype", 75.2, 464809, 54, 7, pers(2.0, 0.3, 0.1, 0.3, 1.0, 0.06, 0.6, 0.5));
    add("credit", 2.7, 24000, 23, 2, pers(3.5, 0.5, 0.3, 0.1, 0.8, 0.1, 0.6, 0.6));
    add("EEG", 1.7, 11984, 14, 2, pers(4.0, 0.5, 0.4, 0.0, 1.0, 0.06, 0.9, 0.1));
    add("electricity", 3.0, 36249, 8, 2, pers(2.5, 0.4, 0.2, 0.0, 1.1, 0.06, 0.8, 0.1));
    add("emotion", 0.2431, 312, 77, 2, pers(1.5, 0.3, 0.1, 0.0, 0.8, 0.12, 0.4, 0.1));
    add("fibert", 13.7, 6589, 800, 7, pers(1.5, 0.25, 0.1, 0.3, 0.9, 0.1, 0.25, 0.3));
    add("forex", 3.6, 35060, 10, 2, pers(3.0, 0.5, 0.4, 0.0, 0.45, 0.15, 0.8, 0.0));
    add("gesture", 3.5, 7898, 32, 5, pers(2.5, 0.4, 0.2, 0.0, 1.0, 0.08, 0.7, 0.2));
    add("heart", 0.01, 242, 13, 2, pers(4.0, 0.6, 0.2, 0.0, 1.2, 0.06, 0.7, 0.1));
    add("helena", 15.2, 52156, 27, 100, pers(2.5, 0.4, 0.2, 0.0, 1.4, 0.05, 0.8, 0.4));
    add("higgs", 31.4, 78439, 28, 2, pers(1.5, 0.35, 0.3, 0.0, 0.6, 0.1, 0.7, 0.0));
    add("house_data", 1.8, 17290, 18, 12, pers(3.5, 0.6, 0.3, 0.0, 1.1, 0.07, 0.7, 0.4));
    add("jannis", 38.4, 66986, 54, 4, pers(2.0, 0.4, 0.2, 0.05, 0.9, 0.08, 0.6, 0.6));
    add("jasmine", 1.0, 2387, 144, 2, pers(2.5, 0.35, 0.1, 0.3, 1.0, 0.07, 0.4, 0.0));
    add("kc1", 0.14, 1687, 21, 2, pers(3.0, 0.7, 0.4, 0.1, 0.8, 0.1, 0.6, 0.8));
    add("madeline", 3.3, 2512, 259, 2, pers(2.5, 0.3, 0.2, 0.0, 0.7, 0.1, 0.3, 0.0));
    add("numerai28.6", 24.3, 77056, 21, 2, pers(0.5, 0.1, 0.1, 0.0, 0.2, 0.2, 0.9, 0.0));
    add("pd", 5.3, 604, 753, 2, pers(5.0, 0.7, 0.3, 0.1, 1.4, 0.05, 0.2, 0.3));
    add("philippine", 14.2, 4665, 308, 2, pers(3.0, 0.5, 0.2, 0.1, 1.0, 0.08, 0.3, 0.0));
    add("phoneme", 0.26, 4323, 5, 2, pers(2.0, 0.5, 0.2, 0.0, 1.0, 0.09, 0.9, 0.4));
    add("thyroid", 0.2, 2240, 26, 5, pers(3.5, 0.6, 0.3, 0.1, 1.1, 0.07, 0.6, 0.7));
    add("vehicle", 0.05, 676, 18, 4, pers(3.0, 0.45, 0.2, 0.0, 1.1, 0.08, 0.7, 0.1));
    add("volkert", 68.1, 46648, 180, 10, pers(2.0, 0.35, 0.2, 0.2, 0.8, 0.1, 0.4, 0.4));
    add("wine", 0.35, 5197, 11, 7, pers(3.0, 0.55, 0.3, 0.0, 0.7, 0.12, 0.8, 0.5));
    add("analcatdata_authorship", 0.13, 672, 70, 4, pers(1.0, 0.2, 0.05, 0.1, 2.2, 0.01, 0.5, 0.3));
    add("gas-drift", 17.3, 11128, 128, 6, pers(2.5, 0.45, 0.2, 0.0, 1.6, 0.03, 0.5, 0.2));
    add("har", 55.4, 8239, 561, 6, pers(0.5, 0.1, 0.05, 0.0, 2.0, 0.01, 0.4, 0.1));
    add("hill", 1.3, 969, 100, 2, pers(6.0, 0.9, 0.4, 0.0, 1.0, 0.03, 0.5, 0.0));
    add("ionosphere", 0.08, 280, 34, 2, pers(2.5, 0.4, 0.2, 0.1, 1.3, 0.05, 0.6, 0.3));
    add("isolet", 2.4, 480, 617, 2, pers(0.3, 0.05, 0.02, 0.0, 2.5, 0.0, 0.4, 0.0));
    add("mobile_price", 0.12, 1600, 20, 4, pers(4.0, 0.5, 0.2, 0.0, 1.3, 0.04, 0.8, 0.0));
    add("mozilla4", 0.39, 12436, 5, 2, pers(3.0, 0.6, 0.3, 0.1, 1.2, 0.05, 0.9, 0.4));
    add("nasa", 1.6, 3749, 33, 2, pers(4.5, 0.65, 0.3, 0.0, 1.3, 0.04, 0.7, 0.2));
    add("page", 0.24, 4378, 10, 5, pers(3.0, 0.6, 0.3, 0.0, 1.4, 0.04, 0.8, 0.9));
    add("robot", 0.8, 4364, 24, 4, pers(3.5, 0.5, 0.2, 0.0, 1.5, 0.03, 0.7, 0.3));
    add("run_or_walk", 4.2, 70870, 6, 2, pers(3.0, 0.55, 0.3, 0.0, 1.3, 0.04, 0.9, 0.0));
    add("spambase", 0.7, 3680, 57, 2, pers(3.0, 0.6, 0.3, 0.4, 1.2, 0.05, 0.6, 0.2));
    add("sylvine", 0.42, 4099, 20, 2, pers(3.0, 0.5, 0.2, 0.0, 1.3, 0.05, 0.7, 0.0));
    add("wall-robot", 0.71, 4364, 24, 4, pers(3.5, 0.5, 0.2, 0.0, 1.5, 0.03, 0.7, 0.3));
    add("wilt", 0.25, 3871, 5, 2, pers(2.5, 0.55, 0.3, 0.0, 1.2, 0.05, 0.9, 0.9));
    v
}

/// Look up a spec by its Table 9 name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    registry().into_iter().find(|s| s.name == name)
}

/// The seven datasets used by the paper's Figure 7 bottleneck analysis.
pub fn bottleneck_seven() -> Vec<DatasetSpec> {
    ["blood", "heart", "emotion", "jasmine", "madeline", "EEG", "phoneme"]
        .iter()
        .filter_map(|n| spec_by_name(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table9_shape() {
        let specs = registry();
        assert_eq!(specs.len(), 45);
        let binary = specs.iter().filter(|s| s.classes == 2).count();
        let multi = specs.iter().filter(|s| s.classes > 2).count();
        // Paper: 28 binary + 17 multi-class datasets.
        assert_eq!(binary, 28);
        assert_eq!(multi, 17);
        let max_classes = specs.iter().map(|s| s.classes).max().unwrap();
        assert_eq!(max_classes, 100); // helena
        let max_cols = specs.iter().map(|s| s.cols).max().unwrap();
        assert_eq!(max_cols, 1636); // christine
        let max_rows = specs.iter().map(|s| s.rows).max().unwrap();
        assert_eq!(max_rows, 464_809); // covtype
        let min_rows = specs.iter().map(|s| s.rows).min().unwrap();
        assert_eq!(min_rows, 242); // heart
    }

    #[test]
    fn names_are_unique() {
        let specs = registry();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 45);
    }

    #[test]
    fn generate_scales_rows() {
        let spec = spec_by_name("heart").unwrap();
        let full = spec.generate(1.0);
        assert_eq!(full.n_rows(), 242);
        assert_eq!(full.n_cols(), 13);
        assert_eq!(full.n_classes, 2);
        let half = spec.generate(0.5);
        assert_eq!(half.n_rows(), 121);
    }

    #[test]
    fn generate_is_deterministic_per_name() {
        let a = spec_by_name("wine").unwrap().generate(0.1);
        let b = spec_by_name("wine").unwrap().generate(0.1);
        assert_eq!(a.x.as_slice(), b.x.as_slice());
    }

    #[test]
    fn size_buckets_follow_paper_rules() {
        assert_eq!(spec_by_name("heart").unwrap().size_bucket(), "small");
        assert_eq!(spec_by_name("credit").unwrap().size_bucket(), "medium");
        assert_eq!(spec_by_name("run_or_walk").unwrap().size_bucket(), "large");
        assert!(spec_by_name("christine").unwrap().is_high_dimensional());
        assert!(!spec_by_name("blood").unwrap().is_high_dimensional());
    }

    #[test]
    fn small_scale_keeps_all_classes() {
        let helena = spec_by_name("helena").unwrap();
        let d = helena.generate(0.02);
        assert_eq!(d.n_classes, 100);
        assert!(d.class_counts().iter().all(|&c| c > 0));
    }
}
