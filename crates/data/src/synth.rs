//! Synthetic classification-data generator.
//!
//! This is the documented substitution for the paper's 45 public datasets
//! (DESIGN.md): a `make_classification`-style generator whose knobs map
//! onto exactly the data properties feature preprocessing interacts with.
//!
//! * `scale_spread` — columns are rescaled by `10^u`, `u ~ U(-s/2, s/2)`.
//!   Scale-sensitive learners (LR, MLP) degrade on such data; scalers
//!   (Standard/MinMax/MaxAbs) repair it. Tree ensembles do not care.
//! * `skew` — a fraction of columns pass through `exp`, producing
//!   log-normal-like marginals that `PowerTransformer` /
//!   `QuantileTransformer` normalize.
//! * `heavy_tail` — Student-t-ish noise (Gaussian scale mixtures) that
//!   rewards robust/quantile transforms.
//! * `sparsity` — zero inflation, making `Binarizer` informative.
//! * `class_sep`, `label_noise`, `imbalance` — control task difficulty
//!   and class skew so validation accuracies spread out the way the
//!   paper's Figure 2 histograms do.

use crate::dataset::Dataset;
use autofp_linalg::rng::{derive_seed, rng_from_seed, standard_normal, weighted_index};
use autofp_linalg::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Distributional "personality" of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Personality {
    /// Orders of magnitude of column-scale spread (0 = homogeneous).
    pub scale_spread: f64,
    /// Fraction of columns given a log-normal (exponentiated) marginal.
    pub skew: f64,
    /// Strength of heavy-tailed noise contamination in `[0, 1]`.
    pub heavy_tail: f64,
    /// Fraction of entries zeroed out.
    pub sparsity: f64,
    /// Distance between class centroids in the informative subspace.
    pub class_sep: f64,
    /// Probability a label is resampled uniformly.
    pub label_noise: f64,
    /// Fraction of informative columns (rest are redundant/noise).
    pub informative_frac: f64,
    /// Class-imbalance exponent (0 = balanced, 1 = Zipf-like).
    pub imbalance: f64,
}

impl Default for Personality {
    fn default() -> Self {
        Personality {
            scale_spread: 2.0,
            skew: 0.3,
            heavy_tail: 0.1,
            sparsity: 0.0,
            class_sep: 1.6,
            label_noise: 0.05,
            informative_frac: 0.6,
            imbalance: 0.2,
        }
    }
}

/// Full configuration for one synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name.
    pub name: String,
    /// Number of rows to generate.
    pub rows: usize,
    /// Number of feature columns.
    pub cols: usize,
    /// Number of classes.
    pub classes: usize,
    /// Generation seed.
    pub seed: u64,
    /// Distributional personality (see [`Personality`]).
    pub personality: Personality,
}

impl SynthConfig {
    /// Configuration with the default personality.
    pub fn new(name: impl Into<String>, rows: usize, cols: usize, classes: usize, seed: u64) -> Self {
        SynthConfig {
            name: name.into(),
            rows,
            cols,
            classes,
            seed,
            personality: Personality::default(),
        }
    }

    /// Override the personality (builder style).
    pub fn with_personality(mut self, p: Personality) -> Self {
        self.personality = p;
        self
    }

    /// Generate the dataset deterministically from the config.
    pub fn generate(&self) -> Dataset {
        assert!(self.rows >= self.classes, "need at least one row per class");
        assert!(self.cols >= 1 && self.classes >= 2);
        let p = &self.personality;
        let mut rng = rng_from_seed(derive_seed(self.seed, 0xDA7A));

        let n_informative = ((self.cols as f64 * p.informative_frac).round() as usize)
            .clamp(1, self.cols);
        let n_redundant = ((self.cols - n_informative) / 2).min(self.cols - n_informative);

        // Class centroids in the informative subspace.
        let mut centroids = Matrix::zeros(self.classes, n_informative);
        for c in 0..self.classes {
            for j in 0..n_informative {
                let v = standard_normal(&mut rng) * p.class_sep;
                centroids.set(c, j, v);
            }
        }

        // Class prior: Zipf-like with exponent `imbalance`, but every class
        // keeps at least one sample (enforced below).
        let priors: Vec<f64> =
            (0..self.classes).map(|c| 1.0 / ((c + 1) as f64).powf(p.imbalance)).collect();

        // Redundant columns are random mixtures of informative ones.
        let mut mix = Matrix::zeros(n_redundant, n_informative);
        for r in 0..n_redundant {
            for j in 0..n_informative {
                mix.set(r, j, standard_normal(&mut rng) * 0.7);
            }
        }

        let mut x = Matrix::zeros(self.rows, self.cols);
        let mut y = Vec::with_capacity(self.rows);
        // Guarantee class coverage: first `classes` rows take each class.
        for i in 0..self.rows {
            let class =
                if i < self.classes { i } else { weighted_index(&mut rng, &priors) };
            y.push(class);
            let row = x.row_mut(i);
            // Informative block.
            for (j, slot) in row[..n_informative].iter_mut().enumerate() {
                let noise = heavy_noise(&mut rng, p.heavy_tail);
                *slot = centroids.get(class, j) + noise;
            }
            // Redundant block.
            for r in 0..n_redundant {
                let mut v = 0.0;
                for j in 0..n_informative {
                    v += mix.get(r, j) * row[j];
                }
                row[n_informative + r] = v + 0.1 * standard_normal(&mut rng);
            }
            // Pure-noise block.
            for slot in row[n_informative + n_redundant..].iter_mut() {
                *slot = standard_normal(&mut rng);
            }
        }

        // Column-wise marginal distortions.
        let mut col_rng = rng_from_seed(derive_seed(self.seed, 0xC015));
        for j in 0..self.cols {
            let skewed = col_rng.gen::<f64>() < p.skew;
            let scale = 10f64.powf(col_rng.gen_range(-0.5..0.5) * p.scale_spread);
            let shift = if col_rng.gen::<f64>() < 0.3 {
                col_rng.gen_range(-2.0..2.0) * scale
            } else {
                0.0
            };
            for i in 0..self.rows {
                let mut v = x.get(i, j);
                if skewed {
                    // exp of a roughly unit-scale value: log-normal marginal.
                    v = (v.clamp(-6.0, 6.0)).exp();
                }
                v = v * scale + shift;
                x.set(i, j, v);
            }
        }

        // Zero inflation.
        if p.sparsity > 0.0 {
            let mut z_rng = rng_from_seed(derive_seed(self.seed, 0x5A));
            for v in x.as_mut_slice() {
                if z_rng.gen::<f64>() < p.sparsity {
                    *v = 0.0;
                }
            }
        }

        // Label noise.
        if p.label_noise > 0.0 {
            let mut l_rng = rng_from_seed(derive_seed(self.seed, 0x1AB));
            for (i, label) in y.iter_mut().enumerate() {
                if i >= self.classes && l_rng.gen::<f64>() < p.label_noise {
                    *label = l_rng.gen_range(0..self.classes);
                }
            }
        }

        debug_assert!(x.is_finite());
        Dataset::new(self.name.clone(), x, y, self.classes)
    }
}

/// Gaussian noise contaminated by a wider Gaussian with probability
/// `heavy`, approximating Student-t tails.
fn heavy_noise(rng: &mut StdRng, heavy: f64) -> f64 {
    let z = standard_normal(rng);
    if heavy > 0.0 && rng.gen::<f64>() < 0.05 * heavy.clamp(0.0, 1.0) + 0.02 * heavy {
        z * (3.0 + 7.0 * heavy)
    } else {
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_linalg::stats;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SynthConfig::new("t", 200, 10, 3, 42);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.x.as_slice(), b.x.as_slice());
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthConfig::new("t", 100, 5, 2, 1).generate();
        let b = SynthConfig::new("t", 100, 5, 2, 2).generate();
        assert_ne!(a.x.as_slice(), b.x.as_slice());
    }

    #[test]
    fn shape_and_class_coverage() {
        let d = SynthConfig::new("t", 500, 20, 7, 3).generate();
        assert_eq!(d.x.shape(), (500, 20));
        assert_eq!(d.n_classes, 7);
        assert!(d.class_counts().iter().all(|&c| c > 0));
        assert!(d.x.is_finite());
    }

    #[test]
    fn scale_spread_produces_heterogeneous_scales() {
        let mut p = Personality::default();
        p.scale_spread = 6.0;
        p.skew = 0.0;
        p.sparsity = 0.0;
        let d = SynthConfig::new("t", 400, 12, 2, 9).with_personality(p).generate();
        let stds: Vec<f64> = (0..12).map(|j| stats::std_dev(&d.x.col(j))).collect();
        let max = stds.iter().cloned().fold(0.0, f64::max);
        let min = stds.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 100.0, "spread {max}/{min}");
    }

    #[test]
    fn skew_personality_skews_columns() {
        let mut p = Personality::default();
        p.skew = 1.0; // every column
        p.scale_spread = 0.0;
        let d = SynthConfig::new("t", 2000, 6, 2, 5).with_personality(p).generate();
        let mean_skew: f64 =
            (0..6).map(|j| stats::skewness(&d.x.col(j))).sum::<f64>() / 6.0;
        assert!(mean_skew > 1.0, "mean skew {mean_skew}");
    }

    #[test]
    fn sparsity_zeroes_entries() {
        let mut p = Personality::default();
        p.sparsity = 0.5;
        let d = SynthConfig::new("t", 300, 8, 2, 4).with_personality(p).generate();
        let zeros = d.x.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / (300.0 * 8.0);
        assert!((frac - 0.5).abs() < 0.05, "zero frac {frac}");
    }

    #[test]
    fn imbalance_skews_class_sizes() {
        let mut p = Personality::default();
        p.imbalance = 1.0;
        p.label_noise = 0.0;
        let d = SynthConfig::new("t", 3000, 5, 4, 8).with_personality(p).generate();
        let counts = d.class_counts();
        assert!(counts[0] > counts[3] * 2, "{counts:?}");
    }

    #[test]
    fn separable_data_is_learnable_by_centroid_rule() {
        // With huge class_sep and no noise, nearest-centroid on the
        // informative block should be nearly perfect — sanity check that
        // labels really depend on features.
        let mut p = Personality::default();
        p.class_sep = 8.0;
        p.label_noise = 0.0;
        p.scale_spread = 0.0;
        p.skew = 0.0;
        p.heavy_tail = 0.0;
        let d = SynthConfig::new("t", 400, 10, 3, 21).with_personality(p).generate();
        // Estimate centroids from data itself and classify.
        let mut centroids = vec![vec![0.0; d.n_cols()]; 3];
        let counts = d.class_counts();
        for (i, row) in d.x.rows_iter().enumerate() {
            for (c, v) in centroids[d.y[i]].iter_mut().zip(row) {
                *c += v;
            }
        }
        for (c, cnt) in centroids.iter_mut().zip(&counts) {
            for v in c.iter_mut() {
                *v /= *cnt as f64;
            }
        }
        let mut correct = 0;
        for (i, row) in d.x.rows_iter().enumerate() {
            let pred = (0..3)
                .min_by(|&a, &b| {
                    let da: f64 = row.iter().zip(&centroids[a]).map(|(x, c)| (x - c).powi(2)).sum();
                    let db: f64 = row.iter().zip(&centroids[b]).map(|(x, c)| (x - c).powi(2)).sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if pred == d.y[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / 400.0;
        assert!(acc > 0.95, "acc {acc}");
    }
}
