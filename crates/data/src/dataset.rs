//! The in-memory classification dataset and train/validation splitting.

use autofp_linalg::rng::{derive_seed, rng_from_seed};
use autofp_linalg::Matrix;
use rand::seq::SliceRandom;

/// A labelled tabular classification dataset.
///
/// Features are dense `f64` (the paper restricts itself to numerical
/// datasets: "for categorical and textual features, we need to first
/// transform them into numerical features"); labels are class indices in
/// `0..n_classes`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one row per example.
    pub x: Matrix,
    /// Class index per example.
    pub y: Vec<usize>,
    /// Number of distinct classes.
    pub n_classes: usize,
    /// Human-readable name (registry name or file stem).
    pub name: String,
}

/// A train/validation split of a dataset (the paper uses 80:20).
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion (the paper's 80%).
    pub train: Dataset,
    /// Validation portion (the paper's 20%).
    pub valid: Dataset,
}

impl Dataset {
    /// Construct a dataset, validating labels against `n_classes`.
    ///
    /// # Panics
    /// Panics if row counts disagree or a label is out of range.
    pub fn new(name: impl Into<String>, x: Matrix, y: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(x.nrows(), y.len(), "feature/label row mismatch");
        assert!(n_classes >= 1, "need at least one class");
        assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        Self { x, y, n_classes, name: name.into() }
    }

    /// Number of examples.
    pub fn n_rows(&self) -> usize {
        self.x.nrows()
    }

    /// Number of features.
    pub fn n_cols(&self) -> usize {
        self.x.ncols()
    }

    /// Per-class example counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &c in &self.y {
            counts[c] += 1;
        }
        counts
    }

    /// Approximate in-memory size in megabytes (8 bytes per cell), used
    /// for the paper's small/medium/large bottleneck bucketing (Table 5).
    pub fn size_mb(&self) -> f64 {
        (self.n_rows() * self.n_cols() * 8) as f64 / (1024.0 * 1024.0)
    }

    /// Replace the feature matrix (labels unchanged). Used after a
    /// preprocessing pipeline transforms the features.
    pub fn with_features(&self, x: Matrix) -> Dataset {
        assert_eq!(x.nrows(), self.n_rows());
        Dataset { x, y: self.y.clone(), n_classes: self.n_classes, name: self.name.clone() }
    }

    /// Select a subset of rows.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
            name: self.name.clone(),
        }
    }

    /// Deterministic stratified train/validation split.
    ///
    /// `train_fraction` of each class goes to the training set (the paper
    /// uses 0.8). Classes with a single example land in training.
    pub fn stratified_split(&self, train_fraction: f64, seed: u64) -> Split {
        assert!((0.0..=1.0).contains(&train_fraction));
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &c) in self.y.iter().enumerate() {
            per_class[c].push(i);
        }
        let mut train_idx = Vec::new();
        let mut valid_idx = Vec::new();
        for (c, idx) in per_class.iter_mut().enumerate() {
            let mut rng = rng_from_seed(derive_seed(seed, c as u64));
            idx.shuffle(&mut rng);
            let n_train = if idx.len() <= 1 {
                idx.len()
            } else {
                ((idx.len() as f64 * train_fraction).round() as usize).clamp(1, idx.len() - 1)
            };
            train_idx.extend_from_slice(&idx[..n_train]);
            valid_idx.extend_from_slice(&idx[n_train..]);
        }
        train_idx.sort_unstable();
        valid_idx.sort_unstable();
        Split { train: self.select(&train_idx), valid: self.select(&valid_idx) }
    }

    /// Deterministic subsample of at most `max_rows` rows, stratified.
    /// Used by budgeted evaluation (Hyperband-style partial data) and by
    /// the meta-feature extractor on large datasets.
    pub fn subsample(&self, max_rows: usize, seed: u64) -> Dataset {
        if self.n_rows() <= max_rows {
            return self.clone();
        }
        let frac = max_rows as f64 / self.n_rows() as f64;
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &c) in self.y.iter().enumerate() {
            per_class[c].push(i);
        }
        let mut keep = Vec::with_capacity(max_rows);
        for (c, idx) in per_class.iter_mut().enumerate() {
            let mut rng = rng_from_seed(derive_seed(seed, 1000 + c as u64));
            idx.shuffle(&mut rng);
            let k = ((idx.len() as f64 * frac).round() as usize).max(1).min(idx.len());
            keep.extend_from_slice(&idx[..k]);
        }
        keep.sort_unstable();
        keep.truncate(max_rows);
        self.select(&keep)
    }

    /// K-fold cross-validation index pairs `(train, test)`, stratified.
    pub fn stratified_kfold(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "k-fold needs k >= 2");
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &c) in self.y.iter().enumerate() {
            per_class[c].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (c, idx) in per_class.iter_mut().enumerate() {
            let mut rng = rng_from_seed(derive_seed(seed, 2000 + c as u64));
            idx.shuffle(&mut rng);
            for (j, &i) in idx.iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        (0..k)
            .map(|f| {
                let test: Vec<usize> = folds[f].clone();
                let train: Vec<usize> =
                    folds.iter().enumerate().filter(|&(i, _)| i != f).flat_map(|(_, v)| v.iter().copied()).collect();
                (train, test)
            })
            .collect()
    }

    /// The majority-class baseline accuracy (useful as a sanity floor).
    pub fn majority_accuracy(&self) -> f64 {
        let counts = self.class_counts();
        let max = counts.into_iter().max().unwrap_or(0);
        if self.n_rows() == 0 {
            0.0
        } else {
            max as f64 / self.n_rows() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, classes: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let y: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new("toy", Matrix::from_rows(&rows), y, classes)
    }

    #[test]
    fn split_is_stratified_and_deterministic() {
        let d = toy(100, 4);
        let s1 = d.stratified_split(0.8, 7);
        let s2 = d.stratified_split(0.8, 7);
        assert_eq!(s1.train.y, s2.train.y);
        assert_eq!(s1.train.n_rows(), 80);
        assert_eq!(s1.valid.n_rows(), 20);
        let counts = s1.train.class_counts();
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn split_keeps_rows_disjoint_and_complete() {
        let d = toy(53, 3);
        let s = d.stratified_split(0.8, 1);
        assert_eq!(s.train.n_rows() + s.valid.n_rows(), 53);
        // Rows carry unique feature values, so check disjointness via col 0.
        let mut all: Vec<f64> = s.train.x.col(0);
        all.extend(s.valid.x.col(0));
        all.sort_by(f64::total_cmp);
        all.dedup();
        assert_eq!(all.len(), 53);
    }

    #[test]
    fn tiny_class_goes_to_train() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let d = Dataset::new("t", x, vec![0, 0, 0, 1], 2);
        let s = d.stratified_split(0.8, 0);
        assert_eq!(s.train.class_counts()[1], 1);
    }

    #[test]
    fn subsample_respects_max_and_classes() {
        let d = toy(1000, 5);
        let s = d.subsample(100, 3);
        assert!(s.n_rows() <= 100);
        assert!(s.class_counts().iter().all(|&c| c > 0));
        // No-op when already small.
        assert_eq!(d.subsample(5000, 3).n_rows(), 1000);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let d = toy(30, 3);
        let folds = d.stratified_kfold(3, 5);
        assert_eq!(folds.len(), 3);
        let mut seen = vec![0usize; 30];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 30);
            for &i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn majority_accuracy_simple() {
        let x = Matrix::zeros(4, 1);
        let d = Dataset::new("m", x, vec![0, 0, 0, 1], 2);
        assert_eq!(d.majority_accuracy(), 0.75);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new("bad", Matrix::zeros(2, 1), vec![0, 5], 2);
    }
}
