//! Minimal CSV import/export for datasets.
//!
//! Format: an optional header row, numeric feature columns, and the class
//! label as the **last** column (integer, or any distinct strings which
//! are mapped to class indices in first-appearance order). This is enough
//! to round-trip datasets to disk and to load real data when a user has
//! it; the benchmark itself runs on the synthetic registry.

use crate::dataset::Dataset;
use autofp_linalg::Matrix;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Parse a dataset from CSV text. `has_header` skips the first line.
pub fn parse_csv(name: &str, text: &str, has_header: bool) -> Result<Dataset, String> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        if lineno == 0 && has_header {
            continue;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(format!("line {}: need at least one feature and a label", lineno + 1));
        }
        match width {
            None => width = Some(fields.len()),
            Some(w) if w != fields.len() => {
                return Err(format!("line {}: expected {} fields, found {}", lineno + 1, w, fields.len()))
            }
            _ => {}
        }
        let (feat, label) = fields.split_at(fields.len() - 1);
        let mut row = Vec::with_capacity(feat.len());
        for (col, f) in feat.iter().enumerate() {
            let v: f64 = f
                .parse()
                .map_err(|_| format!("line {}, column {}: '{}' is not numeric", lineno + 1, col + 1, f))?;
            row.push(v);
        }
        rows.push(row);
        labels.push(label[0].to_string());
    }
    if rows.is_empty() {
        return Err("no data rows".into());
    }
    // Map labels to class indices in order of first appearance.
    let mut class_of: HashMap<String, usize> = HashMap::new();
    let mut y = Vec::with_capacity(labels.len());
    for l in labels {
        let next = class_of.len();
        let idx = *class_of.entry(l).or_insert(next);
        y.push(idx);
    }
    let n_classes = class_of.len();
    Ok(Dataset::new(name, Matrix::from_rows(&rows), y, n_classes))
}

/// Serialize a dataset as CSV (header `f0,...,fN,label`).
pub fn to_csv(d: &Dataset) -> String {
    let mut out = String::new();
    for j in 0..d.n_cols() {
        let _ = write!(out, "f{j},");
    }
    out.push_str("label\n");
    for (i, row) in d.x.rows_iter().enumerate() {
        for v in row {
            let _ = write!(out, "{v},");
        }
        let _ = writeln!(out, "{}", d.y[i]);
    }
    out
}

/// Load a dataset from a CSV file (header required).
pub fn read_csv_file(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let path = path.as_ref();
    let text = fs::read_to_string(path)?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("csv");
    parse_csv(name, &text, true).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Write a dataset to a CSV file.
pub fn write_csv_file(d: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_csv(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let d = parse_csv("t", "a,b,label\n1,2,0\n3,4,1\n5,6,0\n", true).unwrap();
        assert_eq!(d.x.shape(), (3, 2));
        assert_eq!(d.y, vec![0, 1, 0]);
        assert_eq!(d.n_classes, 2);
    }

    #[test]
    fn parse_string_labels() {
        let d = parse_csv("t", "1,cat\n2,dog\n3,cat\n4,bird\n", false).unwrap();
        assert_eq!(d.y, vec![0, 1, 0, 2]);
        assert_eq!(d.n_classes, 3);
    }

    #[test]
    fn roundtrip() {
        let orig = crate::synth::SynthConfig::new("rt", 50, 4, 3, 7).generate();
        let text = to_csv(&orig);
        let back = parse_csv("rt", &text, true).unwrap();
        assert_eq!(back.x.shape(), orig.x.shape());
        assert_eq!(back.y, orig.y);
        for (a, b) in back.x.as_slice().iter().zip(orig.x.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_csv("t", "", false).is_err());
        assert!(parse_csv("t", "1,2,0\n1,0\n", false).is_err());
        assert!(parse_csv("t", "x,0\n", false).is_err());
        assert!(parse_csv("t", "justone\n", false).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let d = crate::synth::SynthConfig::new("file", 20, 3, 2, 1).generate();
        let path = std::env::temp_dir().join("autofp_csv_test.csv");
        write_csv_file(&d, &path).unwrap();
        let back = read_csv_file(&path).unwrap();
        assert_eq!(back.n_rows(), 20);
        let _ = std::fs::remove_file(&path);
    }
}
