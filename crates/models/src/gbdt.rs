//! Histogram-based gradient-boosted decision trees (the XGBoost stand-in).
//!
//! Implements the parts of XGBoost that matter for this study: softmax
//! multiclass objective with first/second-order gradients, quantile-sketch
//! feature binning, histogram split finding with the XGBoost gain formula
//! (`0.5 * [G_L²/(H_L+λ) + G_R²/(H_R+λ) - G²/(H+λ)] - γ`), Newton leaf
//! weights, shrinkage, and optional row subsampling. Because binned splits
//! are invariant to monotone per-column transforms, this learner is far
//! less sensitive to feature preprocessing than LR/MLP — reproducing the
//! paper's observation that FP improves XGB in many fewer scenarios.

use crate::cancel::CancelToken;
use crate::classifier::{Classifier, Trainer};
use autofp_linalg::dist::softmax_inplace;
use autofp_linalg::rng::{derive_seed, rng_from_seed, sample_indices};
use autofp_linalg::Matrix;

/// Hyperparameters for [`Gbdt`].
#[derive(Debug, Clone)]
pub struct GbdtParams {
    /// Boosting rounds at full budget (`n_estimators`).
    pub n_rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (`eta`).
    pub learning_rate: f64,
    /// L2 regularization on leaf weights (`lambda`).
    pub reg_lambda: f64,
    /// Minimum gain to accept a split (`gamma`).
    pub min_split_gain: f64,
    /// Minimum hessian sum per child (`min_child_weight`).
    pub min_child_weight: f64,
    /// Row subsampling fraction per round.
    pub subsample: f64,
    /// Number of histogram bins per feature.
    pub n_bins: usize,
    /// Seed for subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 30,
            max_depth: 4,
            learning_rate: 0.3,
            reg_lambda: 1.0,
            min_split_gain: 0.0,
            // XGBoost defaults to 1.0, but with softmax hessians of at
            // most 0.25 per row that forbids any split on nodes under ~4
            // rows; the benchmark runs on scaled-down datasets, so the
            // default here is proportionally lower.
            min_child_weight: 1e-3,
            subsample: 1.0,
            n_bins: 48,
            seed: 0,
        }
    }
}

impl GbdtParams {
    /// Set the subsampling seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
pub(crate) enum TreeNode {
    Leaf { weight: f64 },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// One regression tree of the ensemble.
#[derive(Debug, Clone)]
pub(crate) struct RegTree {
    pub(crate) nodes: Vec<TreeNode>,
}

impl RegTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { weight } => return *weight,
                TreeNode::Split { feature, threshold, left, right } => {
                    let v = row.get(*feature).copied().unwrap_or(0.0);
                    i = if v.is_finite() && v <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// A trained gradient-boosted tree ensemble.
pub struct Gbdt {
    /// `trees[round][class]`.
    pub(crate) trees: Vec<Vec<RegTree>>,
    pub(crate) n_classes: usize,
    pub(crate) learning_rate: f64,
}

impl Gbdt {
    /// Number of completed boosting rounds.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    fn scores(&self, row: &[f64]) -> Vec<f64> {
        let mut f = vec![0.0; self.n_classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                f[k] += self.learning_rate * tree.predict_row(row);
            }
        }
        f
    }
}

impl Classifier for Gbdt {
    fn predict_row(&self, row: &[f64]) -> usize {
        crate::linear::argmax(&self.scores(row))
    }

    fn predict_proba_row(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut f = self.scores(row);
        softmax_inplace(&mut f);
        f.resize(n_classes, 0.0);
        f
    }
}

impl GbdtParams {
    /// Train, returning the concrete model type (the [`Trainer`] impl
    /// boxes this; the artifact exporter serializes the ensemble).
    pub fn train_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> Gbdt {
        let rounds = ((self.n_rounds as f64 * budget.clamp(0.0, 1.0)).round() as usize).max(1);
        let (n, _d) = x.shape();
        assert_eq!(n, y.len());
        let k = n_classes;

        let bins = Bins::fit(x, self.n_bins);
        let binned = bins.apply(x);

        let mut f = Matrix::zeros(n, k); // raw scores
        let mut trees: Vec<Vec<RegTree>> = Vec::with_capacity(rounds);
        let mut grad = vec![0.0; n];
        let mut hess = vec![0.0; n];
        let mut probs = vec![0.0; k];

        for round in 0..rounds {
            // Cooperative cancellation between boosting rounds; a partial
            // ensemble (at least one round) is a valid model.
            if round > 0 && cancel.is_cancelled() {
                break;
            }
            // Row subsample for this round.
            let rows: Vec<usize> = if self.subsample < 1.0 {
                let m = ((n as f64 * self.subsample).round() as usize).max(1);
                let mut rng = rng_from_seed(derive_seed(self.seed, round as u64));
                let mut idx = sample_indices(&mut rng, n, m);
                idx.sort_unstable();
                idx
            } else {
                (0..n).collect()
            };

            let mut round_trees = Vec::with_capacity(k);
            for class in 0..k {
                // Softmax gradients for this class.
                for &i in &rows {
                    probs.copy_from_slice(f.row(i));
                    softmax_inplace(&mut probs);
                    let p = probs[class];
                    let target = (y[i] == class) as u8 as f64;
                    grad[i] = p - target;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = build_tree(
                    &binned,
                    &bins,
                    &rows,
                    &grad,
                    &hess,
                    self,
                );
                round_trees.push(tree);
            }
            // Update scores with all class trees of this round.
            for i in 0..n {
                let xrow = x.row(i);
                for (class, tree) in round_trees.iter().enumerate() {
                    let v = f.get(i, class) + self.learning_rate * tree.predict_row(xrow);
                    f.set(i, class, v);
                }
            }
            trees.push(round_trees);
        }
        Gbdt { trees, n_classes: k, learning_rate: self.learning_rate }
    }
}

impl Trainer for GbdtParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
    ) -> Box<dyn Classifier> {
        self.fit_cancellable(x, y, n_classes, budget, &CancelToken::new())
    }

    fn fit_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> Box<dyn Classifier> {
        Box::new(self.train_cancellable(x, y, n_classes, budget, cancel))
    }

    fn name(&self) -> &'static str {
        "XGB"
    }
}

/// Quantile-sketch bin edges per feature.
struct Bins {
    /// `edges[j]` sorted; bin of `v` = count of edges `< v`.
    edges: Vec<Vec<f64>>,
}

impl Bins {
    fn fit(x: &Matrix, n_bins: usize) -> Bins {
        let (n, d) = x.shape();
        let max_edges = n_bins.max(2) - 1;
        let mut edges = Vec::with_capacity(d);
        for j in 0..d {
            let mut col: Vec<f64> = x.col(j).into_iter().filter(|v| v.is_finite()).collect();
            col.sort_by(f64::total_cmp);
            col.dedup();
            let e: Vec<f64> = if col.len() <= max_edges {
                // Midpoints between consecutive distinct values.
                col.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                let mut e: Vec<f64> = (1..=max_edges)
                    .map(|i| {
                        let q = i as f64 / (max_edges + 1) as f64;
                        autofp_linalg::stats::quantile_sorted(&col, q)
                    })
                    .collect();
                e.dedup();
                e
            };
            edges.push(e);
        }
        let _ = n;
        Bins { edges }
    }

    fn bin_of(&self, j: usize, v: f64) -> usize {
        if !v.is_finite() {
            return self.edges[j].len();
        }
        self.edges[j].partition_point(|&e| e < v)
    }

    /// Number of bins for feature `j`.
    fn n_bins(&self, j: usize) -> usize {
        self.edges[j].len() + 1
    }

    fn apply(&self, x: &Matrix) -> Vec<Vec<u16>> {
        let (n, d) = x.shape();
        let mut out = vec![vec![0u16; d]; n];
        for (i, row) in x.rows_iter().enumerate() {
            for j in 0..d {
                out[i][j] = self.bin_of(j, row[j]) as u16;
            }
        }
        out
    }
}

fn build_tree(
    binned: &[Vec<u16>],
    bins: &Bins,
    rows: &[usize],
    grad: &[f64],
    hess: &[f64],
    params: &GbdtParams,
) -> RegTree {
    let mut nodes = Vec::new();
    grow(binned, bins, rows, grad, hess, params, 0, &mut nodes);
    RegTree { nodes }
}

#[allow(clippy::too_many_arguments)]
fn grow(
    binned: &[Vec<u16>],
    bins: &Bins,
    rows: &[usize],
    grad: &[f64],
    hess: &[f64],
    params: &GbdtParams,
    depth: usize,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let g: f64 = rows.iter().map(|&i| grad[i]).sum();
    let h: f64 = rows.iter().map(|&i| hess[i]).sum();
    let leaf_weight = -g / (h + params.reg_lambda);
    if depth >= params.max_depth || rows.len() < 2 {
        nodes.push(TreeNode::Leaf { weight: leaf_weight });
        return nodes.len() - 1;
    }

    let d = binned.first().map_or(0, Vec::len);
    let parent_score = g * g / (h + params.reg_lambda);
    let mut best: Option<(f64, usize, usize)> = None; // (gain, feature, bin)
    for j in 0..d {
        let nb = bins.n_bins(j);
        if nb <= 1 {
            continue;
        }
        // Histogram of (G, H) per bin.
        let mut hist_g = vec![0.0; nb];
        let mut hist_h = vec![0.0; nb];
        for &i in rows {
            let b = binned[i][j] as usize;
            hist_g[b] += grad[i];
            hist_h[b] += hess[i];
        }
        let mut gl = 0.0;
        let mut hl = 0.0;
        for b in 0..nb - 1 {
            gl += hist_g[b];
            hl += hist_h[b];
            let gr = g - gl;
            let hr = h - hl;
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + params.reg_lambda) + gr * gr / (hr + params.reg_lambda)
                    - parent_score)
                - params.min_split_gain;
            if gain > 1e-12 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, j, b));
            }
        }
    }

    match best {
        None => {
            nodes.push(TreeNode::Leaf { weight: leaf_weight });
            nodes.len() - 1
        }
        Some((_, feature, bin)) => {
            let threshold = bins.edges[feature][bin];
            let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&i| (binned[i][feature] as usize) <= bin);
            if left_rows.is_empty() || right_rows.is_empty() {
                nodes.push(TreeNode::Leaf { weight: leaf_weight });
                return nodes.len() - 1;
            }
            let id = nodes.len();
            nodes.push(TreeNode::Leaf { weight: 0.0 });
            let left = grow(binned, bins, &left_rows, grad, hess, params, depth + 1, nodes);
            let right = grow(binned, bins, &right_rows, grad, hess, params, depth + 1, nodes);
            nodes[id] = TreeNode::Split { feature, threshold, left, right };
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use autofp_data::{Personality, SynthConfig};

    fn clean_personality() -> Personality {
        Personality {
            scale_spread: 0.0,
            skew: 0.0,
            heavy_tail: 0.0,
            sparsity: 0.0,
            class_sep: 2.5,
            label_noise: 0.0,
            informative_frac: 1.0,
            imbalance: 0.0,
        }
    }

    #[test]
    fn learns_nonlinear_xor() {
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![((i * 7) % 20) as f64 / 10.0 - 1.0, ((i * 13) % 20) as f64 / 10.0 - 1.0])
            .collect();
        let y: Vec<usize> = rows.iter().map(|r| ((r[0] > 0.0) ^ (r[1] > 0.0)) as usize).collect();
        let x = Matrix::from_rows(&rows);
        let model = GbdtParams::default().fit(&x, &y, 2);
        let acc = accuracy(&y, &model.predict(&x));
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn learns_multiclass() {
        let d = SynthConfig::new("gbdt-mc", 500, 6, 3, 11)
            .with_personality(clean_personality())
            .generate();
        let split = d.stratified_split(0.8, 0);
        let model = GbdtParams::default().fit(&split.train.x, &split.train.y, 3);
        let acc = accuracy(&split.valid.y, &model.predict(&split.valid.x));
        assert!(acc > 0.85, "acc {acc}");
    }

    #[test]
    fn scale_invariance_to_monotone_column_transforms() {
        // Binned splits are invariant to monotone transforms: accuracy on
        // exp-scaled features should match the raw features closely.
        let d = SynthConfig::new("gbdt-scale", 400, 5, 2, 13)
            .with_personality(clean_personality())
            .generate();
        let split = d.stratified_split(0.8, 0);
        let model_raw = GbdtParams::default().fit(&split.train.x, &split.train.y, 2);
        let acc_raw = accuracy(&split.valid.y, &model_raw.predict(&split.valid.x));

        let mono = |m: &Matrix| {
            let mut out = m.clone();
            out.map_inplace(|v| (v.clamp(-20.0, 20.0)).exp() * 1e4);
            out
        };
        let model_t = GbdtParams::default().fit(&mono(&split.train.x), &split.train.y, 2);
        let acc_t = accuracy(&split.valid.y, &model_t.predict(&mono(&split.valid.x)));
        assert!((acc_raw - acc_t).abs() < 0.06, "raw {acc_raw} vs transformed {acc_t}");
    }

    #[test]
    fn budget_controls_rounds() {
        let d = SynthConfig::new("gbdt-b", 200, 4, 2, 17)
            .with_personality(clean_personality())
            .generate();
        let params = GbdtParams { n_rounds: 20, ..Default::default() };
        let _full = params.fit_budgeted(&d.x, &d.y, 2, 1.0);
        let small = params.fit_budgeted(&d.x, &d.y, 2, 0.1);
        // Can't downcast through the trait object; check behaviourally by
        // training a Gbdt directly.
        let _ = small;
        let direct: Box<dyn Classifier> = params.fit_budgeted(&d.x, &d.y, 2, 0.05);
        let preds = direct.predict(&d.x);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn constant_features_fall_back_to_prior() {
        let x = Matrix::filled(10, 3, 1.0);
        let y = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        let model = GbdtParams::default().fit(&x, &y, 2);
        assert_eq!(model.predict_row(&[1.0, 1.0, 1.0]), 0);
    }

    #[test]
    fn probabilities_are_calibratedish() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![1.0], vec![1.0]]);
        let y = vec![0, 0, 1, 1];
        let model = GbdtParams::default().fit(&x, &y, 2);
        let p0 = model.predict_proba_row(&[0.0], 2);
        let p1 = model.predict_proba_row(&[1.0], 2);
        assert!(p0[0] > 0.7, "{p0:?}");
        assert!(p1[1] > 0.7, "{p1:?}");
        assert!((p0.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binning_handles_few_distinct_values() {
        let x = Matrix::column_vector(&[0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        let bins = Bins::fit(&x, 48);
        assert_eq!(bins.n_bins(0), 3);
        assert_eq!(bins.bin_of(0, 0.0), 0);
        assert_eq!(bins.bin_of(0, 1.0), 1);
        assert_eq!(bins.bin_of(0, 2.0), 2);
        assert_eq!(bins.bin_of(0, -5.0), 0);
        assert_eq!(bins.bin_of(0, 5.0), 2);
    }

    #[test]
    fn subsample_training_is_deterministic() {
        let d = SynthConfig::new("gbdt-ss", 300, 5, 2, 23)
            .with_personality(clean_personality())
            .generate();
        let params = GbdtParams { subsample: 0.5, seed: 4, n_rounds: 5, ..Default::default() };
        let a = params.fit(&d.x, &d.y, 2).predict(&d.x);
        let b = params.fit(&d.x, &d.y, 2).predict(&d.x);
        assert_eq!(a, b);
    }
}
