//! Cooperative cancellation for trainer iteration loops.
//!
//! Wall-clock search budgets are only consulted *between* evaluations,
//! so the last evaluation of a run can overshoot the deadline by a full
//! Prep + Train cycle. A [`CancelToken`] closes that gap: the evaluation
//! layer arms one with the budget's deadline (or trips it explicitly),
//! and every [`crate::classifier::Trainer`] checks it once per epoch or
//! boosting round, abandoning the remaining iterations when it fires.
//!
//! Cancellation is *cooperative*: a token never interrupts a running
//! iteration, it only stops the next one from starting. A token with no
//! deadline that is never [`CancelToken::cancel`]ed is free to check and
//! never fires, so deterministic (eval-count-budget) runs behave
//! identically with and without cancellation support.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared, cloneable cancellation flag with an optional wall-clock
/// deadline. Clones share the same state: cancelling one cancels all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that additionally fires once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// Trip the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called or the deadline (if
    /// any) has passed. Cheap enough to call once per training epoch.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            // lint:allow(nondet): deadline polling is the cooperative-cancellation mechanism a wall-clock budget arms
            // lint:allow(nondet-flow): the documented determinism escape — a deadline only fires when the wall-clock budget is exhausted and the trial is abandoned as Deadline
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The deadline this token was armed with, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn past_deadline_fires_and_latches() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }
}
