//! Multinomial logistic regression trained with full-batch Adam.
//!
//! Stands in for scikit-learn's `LogisticRegression` (the paper's most
//! popular downstream model). Like the lbfgs-based original, it is a
//! convex-optimizer-on-softmax-loss — and, crucially for this study, it
//! is *scale sensitive*: with a fixed iteration budget, badly scaled
//! features slow convergence and cost accuracy, which is precisely the
//! effect feature preprocessing repairs.

use crate::cancel::CancelToken;
use crate::classifier::{Classifier, Trainer};
use autofp_linalg::dist::softmax_inplace;
use autofp_linalg::Matrix;

/// Hyperparameters for [`LogisticRegression`] training.
#[derive(Debug, Clone)]
pub struct LogisticParams {
    /// Full-budget number of Adam epochs (sklearn `max_iter` analogue).
    pub max_epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// L2 regularization strength (sklearn `1/C` analogue).
    pub l2: f64,
    /// Relative loss-improvement tolerance for early stopping.
    pub tol: f64,
    /// Seed (unused by the deterministic full-batch optimizer, kept for
    /// interface uniformity).
    pub seed: u64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams { max_epochs: 80, learning_rate: 0.1, l2: 1e-4, tol: 1e-5, seed: 0 }
    }
}

impl LogisticParams {
    /// Set the seed (builder style; kept for interface uniformity).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained multinomial logistic regression model.
pub struct LogisticRegression {
    /// Weights, `n_classes x (n_features + 1)`; last column is the bias.
    pub(crate) weights: Matrix,
    pub(crate) n_classes: usize,
}

impl LogisticRegression {
    /// Raw class scores (logits) for a feature row.
    fn logits(&self, row: &[f64]) -> Vec<f64> {
        let d = self.weights.ncols() - 1;
        (0..self.n_classes)
            .map(|c| {
                let w = self.weights.row(c);
                let mut z = w[d]; // bias
                for (j, &v) in row.iter().enumerate().take(d) {
                    z += w[j] * sanitize(v);
                }
                z
            })
            .collect()
    }
}

impl Classifier for LogisticRegression {
    fn predict_row(&self, row: &[f64]) -> usize {
        let z = self.logits(row);
        argmax(&z)
    }

    fn predict_proba_row(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut z = self.logits(row);
        softmax_inplace(&mut z);
        z.resize(n_classes, 0.0);
        z
    }
}

impl LogisticParams {
    /// Train, returning the concrete model type (the [`Trainer`] impl
    /// boxes this; the artifact exporter serializes its weights).
    pub fn train_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> LogisticRegression {
        let (n, d) = x.shape();
        assert_eq!(n, y.len());
        let epochs = ((self.max_epochs as f64 * budget.clamp(0.0, 1.0)).round() as usize).max(1);
        let k = n_classes;
        let mut w = Matrix::zeros(k, d + 1);
        let mut m = Matrix::zeros(k, d + 1);
        let mut v = Matrix::zeros(k, d + 1);
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let nf = n.max(1) as f64;
        let mut prev_loss = f64::INFINITY;

        let mut probs = vec![0.0; k];
        let mut grad = Matrix::zeros(k, d + 1);
        for epoch in 1..=epochs {
            // Cooperative cancellation: always finish at least one epoch
            // so the returned model carries a real gradient step.
            if epoch > 1 && cancel.is_cancelled() {
                break;
            }
            grad.as_mut_slice().fill(0.0);
            let mut loss = 0.0;
            for (i, row) in x.rows_iter().enumerate() {
                for (c, p) in probs.iter_mut().enumerate() {
                    let wr = w.row(c);
                    let mut z = wr[d];
                    for (j, &val) in row.iter().enumerate() {
                        z += wr[j] * sanitize(val);
                    }
                    *p = z;
                }
                let lse = autofp_linalg::dist::logsumexp(&probs);
                loss += lse - probs[y[i]];
                softmax_inplace(&mut probs);
                for c in 0..k {
                    let delta = probs[c] - if c == y[i] { 1.0 } else { 0.0 };
                    if delta == 0.0 {
                        continue;
                    }
                    let g = grad.row_mut(c);
                    for (j, &val) in row.iter().enumerate() {
                        g[j] += delta * sanitize(val);
                    }
                    g[d] += delta;
                }
            }
            loss /= nf;
            // L2 on non-bias weights + Adam update.
            let t = epoch as f64;
            let bc1 = 1.0 - b1.powf(t);
            let bc2 = 1.0 - b2.powf(t);
            for c in 0..k {
                for j in 0..=d {
                    let mut g = grad.get(c, j) / nf;
                    if j < d {
                        g += self.l2 * w.get(c, j);
                    }
                    let mm = b1 * m.get(c, j) + (1.0 - b1) * g;
                    let vv = b2 * v.get(c, j) + (1.0 - b2) * g * g;
                    m.set(c, j, mm);
                    v.set(c, j, vv);
                    let step = self.learning_rate * (mm / bc1) / ((vv / bc2).sqrt() + eps);
                    w.set(c, j, w.get(c, j) - step);
                }
            }
            if (prev_loss - loss).abs() < self.tol * prev_loss.abs().max(1.0) {
                break;
            }
            prev_loss = loss;
        }
        LogisticRegression { weights: w, n_classes: k }
    }
}

impl Trainer for LogisticParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
    ) -> Box<dyn Classifier> {
        self.fit_cancellable(x, y, n_classes, budget, &CancelToken::new())
    }

    fn fit_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> Box<dyn Classifier> {
        Box::new(self.train_cancellable(x, y, n_classes, budget, cancel))
    }

    fn name(&self) -> &'static str {
        "LR"
    }
}

#[inline]
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v.clamp(-1e12, 1e12)
    } else {
        0.0
    }
}

#[inline]
pub(crate) fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::SynthConfig;
    use crate::metrics::accuracy;

    #[test]
    fn learns_linearly_separable_binary() {
        // y = 1 iff x0 + x1 > 0.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let a = (i % 20) as f64 / 10.0 - 1.0;
                let b = (i % 13) as f64 / 6.0 - 1.0;
                vec![a, b]
            })
            .collect();
        let y: Vec<usize> = rows.iter().map(|r| (r[0] + r[1] > 0.0) as usize).collect();
        let x = Matrix::from_rows(&rows);
        let model = LogisticParams::default().fit(&x, &y, 2);
        let acc = accuracy(&y, &model.predict(&x));
        assert!(acc > 0.95, "train acc {acc}");
    }

    #[test]
    fn learns_multiclass_synthetic() {
        let d = SynthConfig::new("lr-mc", 600, 8, 4, 5)
            .with_personality(autofp_data::Personality {
                scale_spread: 0.0,
                skew: 0.0,
                heavy_tail: 0.0,
                sparsity: 0.0,
                class_sep: 3.0,
                label_noise: 0.0,
                informative_frac: 1.0,
                imbalance: 0.0,
            })
            .generate();
        let model = LogisticParams::default().fit(&d.x, &d.y, d.n_classes);
        let acc = accuracy(&d.y, &model.predict(&d.x));
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn scale_sensitivity_under_fixed_budget() {
        // The study's premise: unscaled features hurt LR under a fixed
        // iteration budget; standardizing recovers accuracy.
        let mut p = autofp_data::Personality::default();
        p.scale_spread = 6.0;
        p.skew = 0.0;
        p.class_sep = 2.0;
        p.label_noise = 0.0;
        let d = SynthConfig::new("lr-scale", 500, 10, 2, 7).with_personality(p).generate();
        let split = d.stratified_split(0.8, 1);
        let trainer = LogisticParams { max_epochs: 40, ..Default::default() };
        let raw = trainer.fit(&split.train.x, &split.train.y, 2);
        let acc_raw = accuracy(&split.valid.y, &raw.predict(&split.valid.x));

        let scaler = autofp_preprocess::Preproc::StandardScaler { with_mean: true };
        let mut xtr = split.train.x.clone();
        let fitted = scaler.fit_transform(&mut xtr);
        let mut xva = split.valid.x.clone();
        fitted.transform(&mut xva);
        let scaled = trainer.fit(&xtr, &split.train.y, 2);
        let acc_scaled = accuracy(&split.valid.y, &scaled.predict(&xva));
        assert!(
            acc_scaled > acc_raw + 0.03,
            "scaled {acc_scaled} should beat raw {acc_raw}"
        );
    }

    #[test]
    fn budget_scales_epochs_and_zero_budget_is_safe() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![0, 0, 1, 1];
        let model = LogisticParams::default().fit_budgeted(&x, &y, 2, 0.0);
        // One epoch only: predictions exist and are valid classes.
        for p in model.predict(&x) {
            assert!(p < 2);
        }
    }

    #[test]
    fn cancelled_fit_stops_after_one_epoch() {
        let d = SynthConfig::new("lr-cancel", 200, 6, 2, 3).generate();
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let params = LogisticParams::default();
        // A cancelled token still completes exactly one epoch, which is
        // bit-identical to a one-epoch (zero-budget) fit.
        let a = params.fit_cancellable(&d.x, &d.y, 2, 1.0, &cancelled).predict(&d.x);
        let b = params.fit_budgeted(&d.x, &d.y, 2, 0.0).predict(&d.x);
        assert_eq!(a, b);
        // An unfired token changes nothing.
        let c = params.fit_cancellable(&d.x, &d.y, 2, 1.0, &CancelToken::new()).predict(&d.x);
        let full = params.fit(&d.x, &d.y, 2).predict(&d.x);
        assert_eq!(c, full);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let y = vec![0, 1];
        let model = LogisticParams::default().fit(&x, &y, 2);
        let p = model.predict_proba_row(&[0.5, 0.5], 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tolerates_nan_and_inf_features() {
        let x = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![f64::INFINITY, -1.0]]);
        let y = vec![0, 1];
        let model = LogisticParams::default().fit(&x, &y, 2);
        let pred = model.predict(&x);
        assert!(pred.iter().all(|&p| p < 2));
    }
}
