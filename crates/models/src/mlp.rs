//! One-hidden-layer multilayer perceptron (scikit-learn `MLPClassifier`
//! analogue): ReLU hidden layer, softmax output, minibatch Adam.
//!
//! Like the LR stand-in, the MLP is deliberately trained under a fixed
//! epoch budget with unit-scale He initialization — so unscaled or
//! heavily skewed inputs genuinely hurt it, reproducing the paper's
//! largest FP gains (e.g. +36% on EEG, +69% on Pd with MLP).

use crate::cancel::CancelToken;
use crate::classifier::{Classifier, Trainer};
use autofp_linalg::dist::softmax_inplace;
use autofp_linalg::rng::{derive_seed, rng_from_seed, standard_normal};
use autofp_linalg::Matrix;
use rand::seq::SliceRandom;

/// Hyperparameters for [`MlpClassifier`] training.
#[derive(Debug, Clone)]
pub struct MlpParams {
    /// Hidden layer width.
    pub hidden: usize,
    /// Full-budget training epochs.
    pub max_epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// L2 weight decay.
    pub l2: f64,
    /// Seed for initialization and batch shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams {
            hidden: 32,
            max_epochs: 30,
            batch_size: 32,
            learning_rate: 0.01,
            l2: 1e-5,
            seed: 0,
        }
    }
}

impl MlpParams {
    /// Set the initialization/shuffling seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A trained MLP.
pub struct MlpClassifier {
    /// Hidden weights, `hidden x (d + 1)` (last column bias).
    pub(crate) w1: Matrix,
    /// Output weights, `k x (hidden + 1)` (last column bias).
    pub(crate) w2: Matrix,
    pub(crate) n_classes: usize,
}

impl MlpClassifier {
    fn forward(&self, row: &[f64]) -> Vec<f64> {
        let d = self.w1.ncols() - 1;
        let h = self.w1.nrows();
        let mut hidden = vec![0.0; h];
        for (a, wr) in hidden.iter_mut().zip(self.w1.rows_iter()) {
            let mut z = wr[d];
            for (j, &v) in row.iter().enumerate().take(d) {
                z += wr[j] * sanitize(v);
            }
            *a = z.max(0.0); // ReLU
        }
        (0..self.n_classes)
            .map(|c| {
                let wr = self.w2.row(c);
                let mut z = wr[h];
                for (j, &a) in hidden.iter().enumerate() {
                    z += wr[j] * a;
                }
                z
            })
            .collect()
    }
}

impl Classifier for MlpClassifier {
    fn predict_row(&self, row: &[f64]) -> usize {
        crate::linear::argmax(&self.forward(row))
    }

    fn predict_proba_row(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut z = self.forward(row);
        softmax_inplace(&mut z);
        z.resize(n_classes, 0.0);
        z
    }
}

/// Adam state for one weight matrix.
struct Adam {
    m: Matrix,
    v: Matrix,
    t: f64,
}

impl Adam {
    fn new(rows: usize, cols: usize) -> Adam {
        Adam { m: Matrix::zeros(rows, cols), v: Matrix::zeros(rows, cols), t: 0.0 }
    }

    fn step(&mut self, w: &mut Matrix, grad: &Matrix, lr: f64) {
        self.t += 1.0;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let bc1 = 1.0 - b1.powf(self.t);
        let bc2 = 1.0 - b2.powf(self.t);
        let ws = w.as_mut_slice();
        let gs = grad.as_slice();
        let ms = self.m.as_mut_slice();
        let vs = self.v.as_mut_slice();
        for i in 0..ws.len() {
            let g = if gs[i].is_finite() { gs[i] } else { 0.0 };
            ms[i] = b1 * ms[i] + (1.0 - b1) * g;
            vs[i] = b2 * vs[i] + (1.0 - b2) * g * g;
            ws[i] -= lr * (ms[i] / bc1) / ((vs[i] / bc2).sqrt() + eps);
        }
    }
}

impl MlpParams {
    /// Train, returning the concrete model type (the [`Trainer`] impl
    /// boxes this; the artifact exporter serializes its weights).
    pub fn train_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> MlpClassifier {
        let (n, d) = x.shape();
        assert_eq!(n, y.len());
        let k = n_classes;
        let h = self.hidden;
        let epochs = ((self.max_epochs as f64 * budget.clamp(0.0, 1.0)).round() as usize).max(1);

        let mut rng = rng_from_seed(derive_seed(self.seed, 0x317));
        // He initialization for the ReLU layer, Xavier-ish for the output.
        let mut w1 = Matrix::zeros(h, d + 1);
        for v in w1.as_mut_slice() {
            *v = standard_normal(&mut rng) * (2.0 / (d.max(1) as f64)).sqrt();
        }
        let mut w2 = Matrix::zeros(k, h + 1);
        for v in w2.as_mut_slice() {
            *v = standard_normal(&mut rng) * (1.0 / (h as f64)).sqrt();
        }

        let mut adam1 = Adam::new(h, d + 1);
        let mut adam2 = Adam::new(k, h + 1);
        let mut g1 = Matrix::zeros(h, d + 1);
        let mut g2 = Matrix::zeros(k, h + 1);
        let mut order: Vec<usize> = (0..n).collect();
        let mut hidden = vec![0.0; h];
        let mut act = vec![false; h];
        let mut probs = vec![0.0; k];
        let mut dhidden = vec![0.0; h];

        for epoch in 0..epochs {
            // Cooperative cancellation between epochs (first epoch always
            // runs so the weights have seen the data at least once).
            if epoch > 0 && cancel.is_cancelled() {
                break;
            }
            order.shuffle(&mut rng);
            for batch in order.chunks(self.batch_size.max(1)) {
                g1.as_mut_slice().fill(0.0);
                g2.as_mut_slice().fill(0.0);
                for &i in batch {
                    let row = x.row(i);
                    // Forward.
                    for (jh, (a, wr)) in hidden.iter_mut().zip(w1.rows_iter()).enumerate() {
                        let mut z = wr[d];
                        for (j, &v) in row.iter().enumerate() {
                            z += wr[j] * sanitize(v);
                        }
                        act[jh] = z > 0.0;
                        *a = z.max(0.0);
                    }
                    for (c, p) in probs.iter_mut().enumerate() {
                        let wr = w2.row(c);
                        let mut z = wr[h];
                        for (j, &a) in hidden.iter().enumerate() {
                            z += wr[j] * a;
                        }
                        *p = z;
                    }
                    softmax_inplace(&mut probs);
                    // Backward.
                    dhidden.fill(0.0);
                    for c in 0..k {
                        let delta = probs[c] - (y[i] == c) as u8 as f64;
                        if delta == 0.0 {
                            continue;
                        }
                        let gr = g2.row_mut(c);
                        for (j, &a) in hidden.iter().enumerate() {
                            gr[j] += delta * a;
                        }
                        gr[h] += delta;
                        let wr = w2.row(c);
                        for (j, dh) in dhidden.iter_mut().enumerate() {
                            *dh += delta * wr[j];
                        }
                    }
                    for (jh, &dh) in dhidden.iter().enumerate() {
                        if !act[jh] || dh == 0.0 {
                            continue;
                        }
                        let gr = g1.row_mut(jh);
                        for (j, &v) in row.iter().enumerate() {
                            gr[j] += dh * sanitize(v);
                        }
                        gr[d] += dh;
                    }
                }
                let scale = 1.0 / batch.len() as f64;
                for (g, w) in [(&mut g1, &w1), (&mut g2, &w2)] {
                    let gs = g.as_mut_slice();
                    let ws = w.as_slice();
                    for (gv, wv) in gs.iter_mut().zip(ws) {
                        *gv = *gv * scale + self.l2 * wv;
                    }
                }
                adam1.step(&mut w1, &g1, self.learning_rate);
                adam2.step(&mut w2, &g2, self.learning_rate);
            }
        }
        MlpClassifier { w1, w2, n_classes: k }
    }
}

impl Trainer for MlpParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
    ) -> Box<dyn Classifier> {
        self.fit_cancellable(x, y, n_classes, budget, &CancelToken::new())
    }

    fn fit_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> Box<dyn Classifier> {
        Box::new(self.train_cancellable(x, y, n_classes, budget, cancel))
    }

    fn name(&self) -> &'static str {
        "MLP"
    }
}

#[inline]
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v.clamp(-1e12, 1e12)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use autofp_data::{Personality, SynthConfig};

    #[test]
    fn learns_xor() {
        let rows: Vec<Vec<f64>> = (0..240)
            .map(|i| {
                vec![((i * 7) % 24) as f64 / 12.0 - 1.0, ((i * 11) % 24) as f64 / 12.0 - 1.0]
            })
            .collect();
        let y: Vec<usize> = rows.iter().map(|r| ((r[0] > 0.0) ^ (r[1] > 0.0)) as usize).collect();
        let x = Matrix::from_rows(&rows);
        let params = MlpParams { max_epochs: 120, ..Default::default() };
        let model = params.fit(&x, &y, 2);
        let acc = accuracy(&y, &model.predict(&x));
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SynthConfig::new("mlp-det", 150, 5, 2, 3).generate();
        let params = MlpParams { max_epochs: 5, seed: 7, ..Default::default() };
        let a = params.fit(&d.x, &d.y, 2).predict(&d.x);
        let b = params.fit(&d.x, &d.y, 2).predict(&d.x);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_sensitivity() {
        let mut p = Personality::default();
        p.scale_spread = 6.0;
        p.skew = 0.5;
        p.class_sep = 2.0;
        p.label_noise = 0.0;
        let d = SynthConfig::new("mlp-scale", 500, 8, 2, 13).with_personality(p).generate();
        let split = d.stratified_split(0.8, 1);
        let params = MlpParams { max_epochs: 15, ..Default::default() };
        let raw = params.fit(&split.train.x, &split.train.y, 2);
        let acc_raw = accuracy(&split.valid.y, &raw.predict(&split.valid.x));

        let scaler = autofp_preprocess::Preproc::StandardScaler { with_mean: true };
        let mut xtr = split.train.x.clone();
        let fitted = scaler.fit_transform(&mut xtr);
        let mut xva = split.valid.x.clone();
        fitted.transform(&mut xva);
        let scaled = params.fit(&xtr, &split.train.y, 2);
        let acc_scaled = accuracy(&split.valid.y, &scaled.predict(&xva));
        assert!(
            acc_scaled > acc_raw + 0.02,
            "scaled {acc_scaled} should beat raw {acc_raw}"
        );
    }

    #[test]
    fn multiclass_probabilities_normalize() {
        let d = SynthConfig::new("mlp-mc", 200, 4, 3, 5).generate();
        let model = MlpParams { max_epochs: 5, ..Default::default() }.fit(&d.x, &d.y, 3);
        let p = model.predict_proba_row(d.x.row(0), 3);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn survives_pathological_inputs() {
        let x = Matrix::from_rows(&[
            vec![f64::NAN, 1e300],
            vec![f64::NEG_INFINITY, -1e300],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0, 1, 0, 1];
        let model = MlpParams { max_epochs: 3, ..Default::default() }.fit(&x, &y, 2);
        let preds = model.predict(&x);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn cancelled_fit_matches_single_epoch() {
        let d = SynthConfig::new("mlp-cancel", 120, 4, 2, 5).generate();
        let params = MlpParams { seed: 3, ..Default::default() };
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let a = params.fit_cancellable(&d.x, &d.y, 2, 1.0, &cancelled).predict(&d.x);
        let b = params.fit_budgeted(&d.x, &d.y, 2, 0.0).predict(&d.x);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_zero_trains_one_epoch() {
        let d = SynthConfig::new("mlp-b", 64, 3, 2, 1).generate();
        let model = MlpParams::default().fit_budgeted(&d.x, &d.y, 2, 0.0);
        assert!(model.predict(&d.x).iter().all(|&p| p < 2));
    }
}
