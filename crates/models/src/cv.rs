//! Stratified k-fold cross-validation.

use crate::classifier::Trainer;
use crate::metrics::accuracy;
use autofp_data::Dataset;

/// Mean k-fold cross-validated accuracy of `trainer` on `dataset`
/// (the paper's "3-CV score" when `k = 3`).
pub fn cross_val_accuracy(trainer: &dyn Trainer, dataset: &Dataset, k: usize, seed: u64) -> f64 {
    let folds = dataset.stratified_kfold(k, seed);
    let mut total = 0.0;
    for (train_idx, test_idx) in &folds {
        let train = dataset.select(train_idx);
        let test = dataset.select(test_idx);
        let model = trainer.fit(&train.x, &train.y, dataset.n_classes);
        total += accuracy(&test.y, &model.predict(&test.x));
    }
    total / folds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeParams;
    use autofp_data::SynthConfig;

    #[test]
    fn cv_scores_in_range_and_deterministic() {
        let d = SynthConfig::new("cv", 120, 5, 2, 3).generate();
        let trainer = DecisionTreeParams::with_depth(Some(3));
        let a = cross_val_accuracy(&trainer, &d, 3, 7);
        let b = cross_val_accuracy(&trainer, &d, 3, 7);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn cv_detects_learnable_signal() {
        let d = SynthConfig::new("cv-sig", 300, 5, 2, 9)
            .with_personality(autofp_data::Personality {
                scale_spread: 0.0,
                skew: 0.0,
                heavy_tail: 0.0,
                sparsity: 0.0,
                class_sep: 3.0,
                label_noise: 0.0,
                informative_frac: 1.0,
                imbalance: 0.0,
            })
            .generate();
        let trainer = DecisionTreeParams::default();
        let acc = cross_val_accuracy(&trainer, &d, 5, 1);
        assert!(acc > 0.85, "acc {acc}");
    }
}
