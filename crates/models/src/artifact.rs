//! Byte codec for trained model weights.
//!
//! [`TrainedModel`] is the concrete (non-boxed) counterpart of
//! `Box<dyn Classifier>`: one of the paper's three model families with
//! its learned parameters exposed enough to serialize. Training through
//! [`TrainedModel::train`] is bit-identical to training through
//! [`ModelKind::trainer`] + `fit_cancellable` — both call the same
//! inherent `train_cancellable` methods — which is what lets an exported
//! artifact reproduce in-search predictions exactly (no training-serving
//! skew).
//!
//! The byte format follows the repo-wide wire idiom: a one-byte family
//! tag, little-endian integers, `f64` as IEEE-754 bit patterns, and
//! `u32`-length prefixes. Encoding is canonical and decoding is total;
//! structural invariants (weight-matrix shapes, tree-node link targets)
//! are validated here so a decoded model can never index out of bounds
//! or loop forever in `predict_row`.

use crate::cancel::CancelToken;
use crate::classifier::{Classifier, ModelKind};
use crate::gbdt::{Gbdt, GbdtParams, RegTree, TreeNode};
use crate::linear::{LogisticParams, LogisticRegression};
use crate::mlp::{MlpClassifier, MlpParams};
use autofp_linalg::Matrix;
use std::fmt;

/// Upper bound on classes accepted by the decoder (prediction allocates
/// one score slot per class).
pub const MAX_CLASSES: usize = 4096;

/// A trained-model payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Human-readable description of the first structural violation.
    pub detail: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trained-model decode error: {}", self.detail)
    }
}

impl std::error::Error for DecodeError {}

fn corrupt(detail: impl Into<String>) -> DecodeError {
    DecodeError { detail: detail.into() }
}

/// A concrete trained classifier from one of the three paper families.
pub enum TrainedModel {
    /// Multinomial logistic regression.
    Lr(LogisticRegression),
    /// Gradient-boosted tree ensemble (XGBoost stand-in).
    Xgb(Gbdt),
    /// One-hidden-layer MLP.
    Mlp(MlpClassifier),
}

impl TrainedModel {
    /// Train the family's default configuration, exactly as
    /// [`ModelKind::trainer`] would: same hyperparameters, same seed
    /// derivation, same budget/cancellation semantics. The returned
    /// model predicts bit-identically to the boxed trainer's output.
    pub fn train(
        kind: ModelKind,
        seed: u64,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> TrainedModel {
        match kind {
            ModelKind::Lr => TrainedModel::Lr(
                LogisticParams::default().with_seed(seed).train_cancellable(
                    x, y, n_classes, budget, cancel,
                ),
            ),
            ModelKind::Xgb => TrainedModel::Xgb(
                GbdtParams::default().with_seed(seed).train_cancellable(
                    x, y, n_classes, budget, cancel,
                ),
            ),
            ModelKind::Mlp => TrainedModel::Mlp(
                MlpParams::default().with_seed(seed).train_cancellable(
                    x, y, n_classes, budget, cancel,
                ),
            ),
        }
    }

    /// The model family.
    pub fn kind(&self) -> ModelKind {
        match self {
            TrainedModel::Lr(_) => ModelKind::Lr,
            TrainedModel::Xgb(_) => ModelKind::Xgb,
            TrainedModel::Mlp(_) => ModelKind::Mlp,
        }
    }

    /// Number of classes the model predicts over.
    pub fn n_classes(&self) -> usize {
        match self {
            TrainedModel::Lr(m) => m.n_classes,
            TrainedModel::Xgb(m) => m.n_classes,
            TrainedModel::Mlp(m) => m.n_classes,
        }
    }

    /// Encode into the canonical byte payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            TrainedModel::Lr(m) => {
                e.u8(0);
                e.u32(m.n_classes as u32);
                e.matrix(&m.weights);
            }
            TrainedModel::Xgb(m) => {
                e.u8(1);
                e.u32(m.n_classes as u32);
                e.f64(m.learning_rate);
                e.u32(m.trees.len() as u32);
                for round in &m.trees {
                    for tree in round {
                        e.u32(tree.nodes.len() as u32);
                        for node in &tree.nodes {
                            match node {
                                TreeNode::Leaf { weight } => {
                                    e.u8(0);
                                    e.f64(*weight);
                                }
                                TreeNode::Split { feature, threshold, left, right } => {
                                    e.u8(1);
                                    e.u32(*feature as u32);
                                    e.f64(*threshold);
                                    e.u32(*left as u32);
                                    e.u32(*right as u32);
                                }
                            }
                        }
                    }
                }
            }
            TrainedModel::Mlp(m) => {
                e.u8(2);
                e.u32(m.n_classes as u32);
                e.matrix(&m.w1);
                e.matrix(&m.w2);
            }
        }
        e.buf
    }

    /// Decode from bytes; total, canonical, rejects trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<TrainedModel, DecodeError> {
        let mut d = Dec::new(bytes);
        let tag = d.u8()?;
        let k = d.u32()? as usize;
        if k == 0 || k > MAX_CLASSES {
            return Err(corrupt(format!("class count {k} out of range")));
        }
        let model = match tag {
            0 => {
                let weights = d.matrix()?;
                if weights.nrows() != k {
                    return Err(corrupt("lr weight rows != n_classes"));
                }
                if weights.ncols() < 1 {
                    return Err(corrupt("lr weights need a bias column"));
                }
                TrainedModel::Lr(LogisticRegression { weights, n_classes: k })
            }
            1 => {
                let learning_rate = d.f64()?;
                let rounds = d.u32()? as usize;
                // Each round holds k trees of >= 1 node (>= 9 bytes each).
                if rounds > d.remaining() / k.saturating_mul(9).max(1) + 1 {
                    return Err(corrupt("gbdt round count exceeds payload"));
                }
                let mut trees = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let mut round = Vec::with_capacity(k);
                    for _ in 0..k {
                        round.push(d.tree()?);
                    }
                    trees.push(round);
                }
                TrainedModel::Xgb(Gbdt { trees, n_classes: k, learning_rate })
            }
            2 => {
                let w1 = d.matrix()?;
                let w2 = d.matrix()?;
                if w1.ncols() < 1 || w1.nrows() < 1 {
                    return Err(corrupt("mlp hidden layer is empty"));
                }
                if w2.nrows() != k {
                    return Err(corrupt("mlp output rows != n_classes"));
                }
                if w2.ncols() != w1.nrows() + 1 {
                    return Err(corrupt("mlp output width != hidden + 1"));
                }
                TrainedModel::Mlp(MlpClassifier { w1, w2, n_classes: k })
            }
            _ => return Err(corrupt(format!("unknown model tag {tag}"))),
        };
        d.finish()?;
        Ok(model)
    }
}

impl Classifier for TrainedModel {
    fn predict_row(&self, row: &[f64]) -> usize {
        match self {
            TrainedModel::Lr(m) => m.predict_row(row),
            TrainedModel::Xgb(m) => m.predict_row(row),
            TrainedModel::Mlp(m) => m.predict_row(row),
        }
    }

    fn predict_proba_row(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        match self {
            TrainedModel::Lr(m) => m.predict_proba_row(row, n_classes),
            TrainedModel::Xgb(m) => m.predict_proba_row(row, n_classes),
            TrainedModel::Mlp(m) => m.predict_proba_row(row, n_classes),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives (crate-local copy of the wire idiom;
// `models` sits below `core`/`evald` in the dependency order).
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn matrix(&mut self, m: &Matrix) {
        self.u32(m.nrows() as u32);
        self.u32(m.ncols() as u32);
        for &v in m.as_slice() {
            self.f64(v);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(corrupt("truncated payload"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }

    fn matrix(&mut self) -> Result<Matrix, DecodeError> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let n = rows.checked_mul(cols).ok_or_else(|| corrupt("matrix size overflow"))?;
        // Bounds-check the byte span before allocating.
        let bytes = n.checked_mul(8).ok_or_else(|| corrupt("matrix size overflow"))?;
        let raw = self.take(bytes)?;
        let mut data = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(8) {
            let mut a = [0u8; 8];
            a.copy_from_slice(chunk);
            data.push(f64::from_bits(u64::from_le_bytes(a)));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn tree(&mut self) -> Result<RegTree, DecodeError> {
        let n = self.u32()? as usize;
        if n == 0 {
            return Err(corrupt("empty tree"));
        }
        // Each node is at least 9 bytes (tag + leaf weight).
        if n > self.remaining() / 9 + 1 {
            return Err(corrupt("tree node count exceeds payload"));
        }
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            match self.u8()? {
                0 => nodes.push(TreeNode::Leaf { weight: self.f64()? }),
                1 => {
                    let feature = self.u32()? as usize;
                    let threshold = self.f64()?;
                    let left = self.u32()? as usize;
                    let right = self.u32()? as usize;
                    // The builder always places children after their
                    // parent; enforcing that here makes `predict_row`
                    // provably terminating and in-bounds on any input.
                    if left <= i || right <= i || left >= n || right >= n {
                        return Err(corrupt("tree split links are not forward in-bounds"));
                    }
                    nodes.push(TreeNode::Split { feature, threshold, left, right });
                }
                t => return Err(corrupt(format!("unknown tree-node tag {t}"))),
            }
        }
        Ok(RegTree { nodes })
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(format!("{} trailing bytes", self.buf.len() - self.pos)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autofp_data::SynthConfig;

    fn train_all() -> Vec<TrainedModel> {
        let d = SynthConfig::new("artifact-models", 120, 5, 3, 9).generate();
        ModelKind::ALL
            .iter()
            .map(|&k| {
                TrainedModel::train(k, 7, &d.x, &d.y, d.n_classes, 1.0, &CancelToken::new())
            })
            .collect()
    }

    #[test]
    fn round_trip_is_canonical_and_predicts_identically() {
        let d = SynthConfig::new("artifact-models", 120, 5, 3, 9).generate();
        for model in train_all() {
            let bytes = model.encode();
            let back = TrainedModel::decode(&bytes).expect("round trip");
            assert_eq!(back.encode(), bytes, "{}", model.kind());
            assert_eq!(back.kind(), model.kind());
            assert_eq!(back.predict(&d.x), model.predict(&d.x), "{}", model.kind());
        }
    }

    #[test]
    fn matches_boxed_trainer_bit_for_bit() {
        let d = SynthConfig::new("artifact-parity", 150, 6, 2, 4).generate();
        for kind in ModelKind::ALL {
            let boxed =
                kind.trainer(11).fit_cancellable(&d.x, &d.y, d.n_classes, 1.0, &CancelToken::new());
            let concrete =
                TrainedModel::train(kind, 11, &d.x, &d.y, d.n_classes, 1.0, &CancelToken::new());
            assert_eq!(boxed.predict(&d.x), concrete.predict(&d.x), "{kind}");
            for row in d.x.rows_iter().take(5) {
                let a = boxed.predict_proba_row(row, d.n_classes);
                let b = concrete.predict_proba_row(row, d.n_classes);
                assert_eq!(a, b, "{kind}");
            }
        }
    }

    #[test]
    fn golden_bytes_are_locked() {
        let lr = TrainedModel::Lr(LogisticRegression {
            weights: Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            n_classes: 2,
        });
        let mut want = vec![0u8]; // LR tag
        want.extend_from_slice(&2u32.to_le_bytes()); // n_classes
        want.extend_from_slice(&2u32.to_le_bytes()); // rows
        want.extend_from_slice(&2u32.to_le_bytes()); // cols
        for v in [1.0f64, 2.0, 3.0, 4.0] {
            want.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(lr.encode(), want);

        let gbdt = TrainedModel::Xgb(Gbdt {
            trees: vec![vec![
                RegTree {
                    nodes: vec![
                        TreeNode::Split { feature: 0, threshold: 0.5, left: 1, right: 2 },
                        TreeNode::Leaf { weight: -1.0 },
                        TreeNode::Leaf { weight: 1.0 },
                    ],
                },
            ]],
            n_classes: 1,
            learning_rate: 0.3,
        });
        let mut want = vec![1u8]; // XGB tag
        want.extend_from_slice(&1u32.to_le_bytes()); // n_classes
        want.extend_from_slice(&0.3f64.to_bits().to_le_bytes());
        want.extend_from_slice(&1u32.to_le_bytes()); // rounds
        want.extend_from_slice(&3u32.to_le_bytes()); // nodes
        want.push(1); // split
        want.extend_from_slice(&0u32.to_le_bytes());
        want.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        want.extend_from_slice(&1u32.to_le_bytes());
        want.extend_from_slice(&2u32.to_le_bytes());
        want.push(0); // leaf
        want.extend_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        want.push(0); // leaf
        want.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        assert_eq!(gbdt.encode(), want);
    }

    #[test]
    fn every_truncation_errors() {
        for model in train_all() {
            let bytes = model.encode();
            for len in 0..bytes.len() {
                assert!(
                    TrainedModel::decode(&bytes[..len]).is_err(),
                    "{} prefix of {len} decoded",
                    model.kind()
                );
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(TrainedModel::decode(&trailing).is_err());
        }
    }

    #[test]
    fn byte_flips_never_panic() {
        for model in train_all() {
            let bytes = model.encode();
            for i in 0..bytes.len() {
                for v in [0u8, 1, 2, 127, 255] {
                    let mut m = bytes.clone();
                    if m[i] == v {
                        continue;
                    }
                    m[i] = v;
                    if let Ok(decoded) = TrainedModel::decode(&m) {
                        // Structurally valid: prediction must not panic.
                        let _ = decoded.predict_row(&[0.0; 5]);
                    }
                }
            }
        }
    }

    #[test]
    fn malicious_tree_links_rejected() {
        // A self-referential split would loop forever in predict_row.
        let mut e = vec![1u8];
        e.extend_from_slice(&1u32.to_le_bytes()); // n_classes
        e.extend_from_slice(&0.3f64.to_bits().to_le_bytes());
        e.extend_from_slice(&1u32.to_le_bytes()); // rounds
        e.extend_from_slice(&1u32.to_le_bytes()); // nodes
        e.push(1); // split
        e.extend_from_slice(&0u32.to_le_bytes());
        e.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
        e.extend_from_slice(&0u32.to_le_bytes()); // left = self
        e.extend_from_slice(&0u32.to_le_bytes()); // right = self
        assert!(TrainedModel::decode(&e).is_err());
    }
}
