//! Auxiliary learners for the landmarking meta-features (Table 10):
//! Gaussian naive Bayes, (diagonal) linear discriminant analysis, and
//! k-nearest neighbours.
//!
//! These are never downstream models in the benchmark; they exist because
//! Auto-Sklearn's meta-features run quick "landmark" learners to
//! characterize a dataset (Landmark1NN, LandmarkNaiveBayes, LandmarkLDA,
//! decision-tree variants).

use crate::classifier::{Classifier, Trainer};
use autofp_linalg::Matrix;

/// Gaussian naive Bayes with per-class, per-feature mean/variance.
pub struct GaussianNbParams;

struct GaussianNb {
    /// Per class: (log prior, means, variances).
    classes: Vec<(f64, Vec<f64>, Vec<f64>)>,
}

impl Trainer for GaussianNbParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        _budget: f64,
    ) -> Box<dyn Classifier> {
        let (n, d) = x.shape();
        let mut sums = vec![vec![0.0; d]; n_classes];
        let mut sq = vec![vec![0.0; d]; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (i, row) in x.rows_iter().enumerate() {
            let c = y[i];
            counts[c] += 1;
            for j in 0..d {
                let v = clean(row[j]);
                sums[c][j] += v;
                sq[c][j] += v * v;
            }
        }
        // Variance smoothing as in sklearn: eps = 1e-9 * max feature var.
        let mut max_var: f64 = 0.0;
        for j in 0..d {
            max_var = max_var.max(autofp_linalg::stats::variance(&x.col(j)));
        }
        let eps = 1e-9 * max_var.max(1.0);
        let classes = (0..n_classes)
            .map(|c| {
                let cnt = counts[c].max(1) as f64;
                let means: Vec<f64> = sums[c].iter().map(|s| s / cnt).collect();
                let vars: Vec<f64> = sq[c]
                    .iter()
                    .zip(&means)
                    .map(|(s, m)| (s / cnt - m * m).max(eps))
                    .collect();
                let prior = (counts[c].max(1) as f64 / n.max(1) as f64).ln();
                (prior, means, vars)
            })
            .collect();
        Box::new(GaussianNb { classes })
    }

    fn name(&self) -> &'static str {
        "GNB"
    }
}

impl Classifier for GaussianNb {
    fn predict_row(&self, row: &[f64]) -> usize {
        let mut best = 0;
        let mut best_ll = f64::NEG_INFINITY;
        for (c, (prior, means, vars)) in self.classes.iter().enumerate() {
            let mut ll = *prior;
            for (j, &v) in row.iter().enumerate().take(means.len()) {
                let v = clean(v);
                let diff = v - means[j];
                ll += -0.5 * (vars[j].ln() + diff * diff / vars[j]);
            }
            if ll > best_ll {
                best_ll = ll;
                best = c;
            }
        }
        best
    }
}

/// Diagonal linear discriminant analysis: class means with a shared
/// per-feature (pooled) variance — the standard high-dimensional LDA
/// simplification, adequate for a landmark score.
pub struct LdaParams;

struct DiagonalLda {
    means: Vec<Vec<f64>>,
    inv_var: Vec<f64>,
    log_priors: Vec<f64>,
}

impl Trainer for LdaParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        _budget: f64,
    ) -> Box<dyn Classifier> {
        let (n, d) = x.shape();
        let mut sums = vec![vec![0.0; d]; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (i, row) in x.rows_iter().enumerate() {
            counts[y[i]] += 1;
            for j in 0..d {
                sums[y[i]][j] += clean(row[j]);
            }
        }
        let means: Vec<Vec<f64>> = (0..n_classes)
            .map(|c| sums[c].iter().map(|s| s / counts[c].max(1) as f64).collect())
            .collect();
        // Pooled within-class variance per feature, ridge-smoothed.
        let mut pooled = vec![0.0; d];
        for (i, row) in x.rows_iter().enumerate() {
            let m = &means[y[i]];
            for j in 0..d {
                let diff = clean(row[j]) - m[j];
                pooled[j] += diff * diff;
            }
        }
        let denom = (n.saturating_sub(n_classes)).max(1) as f64;
        let inv_var: Vec<f64> = pooled.iter().map(|p| 1.0 / (p / denom + 1e-9)).collect();
        let log_priors = counts
            .iter()
            .map(|&c| (c.max(1) as f64 / n.max(1) as f64).ln())
            .collect();
        Box::new(DiagonalLda { means, inv_var, log_priors })
    }

    fn name(&self) -> &'static str {
        "LDA"
    }
}

impl Classifier for DiagonalLda {
    fn predict_row(&self, row: &[f64]) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (c, m) in self.means.iter().enumerate() {
            // Discriminant: x' Σ⁻¹ μ - ½ μ' Σ⁻¹ μ + log π (diagonal Σ).
            let mut score = self.log_priors[c];
            for (j, &mu) in m.iter().enumerate() {
                let v = clean(row.get(j).copied().unwrap_or(0.0));
                score += self.inv_var[j] * mu * (v - 0.5 * mu);
            }
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }
}

/// k-nearest-neighbour classifier (Euclidean); `k = 1` is the paper's
/// `Landmark1NN` learner.
pub struct KnnParams {
    /// Number of neighbours considered.
    pub k: usize,
}

struct Knn {
    x: Matrix,
    y: Vec<usize>,
    n_classes: usize,
    k: usize,
}

impl Trainer for KnnParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        _budget: f64,
    ) -> Box<dyn Classifier> {
        Box::new(Knn { x: x.clone(), y: y.to_vec(), n_classes, k: self.k.max(1) })
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

impl Classifier for Knn {
    fn predict_row(&self, row: &[f64]) -> usize {
        // Track the k smallest distances with a simple insertion buffer.
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(self.k + 1);
        for (i, r) in self.x.rows_iter().enumerate() {
            let mut dist = 0.0;
            for (a, b) in r.iter().zip(row) {
                let diff = clean(*a) - clean(*b);
                dist += diff * diff;
            }
            // Total fallback: an empty buffer accepts any distance.
            if best.len() < self.k || best.last().is_none_or(|&(worst, _)| dist < worst) {
                let pos = best.partition_point(|(d2, _)| *d2 <= dist);
                best.insert(pos, (dist, self.y[i]));
                best.truncate(self.k);
            }
        }
        let mut votes = vec![0usize; self.n_classes];
        for &(_, c) in &best {
            votes[c] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(c, _)| c)
            .unwrap_or(0)
    }
}

#[inline]
fn clean(v: f64) -> f64 {
    if v.is_finite() {
        v.clamp(-1e12, 1e12)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use autofp_data::SynthConfig;

    fn easy() -> autofp_data::Dataset {
        SynthConfig::new("simple", 300, 6, 3, 19)
            .with_personality(autofp_data::Personality {
                scale_spread: 0.0,
                skew: 0.0,
                heavy_tail: 0.0,
                sparsity: 0.0,
                class_sep: 3.0,
                label_noise: 0.0,
                informative_frac: 1.0,
                imbalance: 0.0,
            })
            .generate()
    }

    #[test]
    fn gnb_learns_gaussian_blobs() {
        let d = easy();
        let model = GaussianNbParams.fit(&d.x, &d.y, 3);
        let acc = accuracy(&d.y, &model.predict(&d.x));
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn lda_learns_gaussian_blobs() {
        let d = easy();
        let model = LdaParams.fit(&d.x, &d.y, 3);
        let acc = accuracy(&d.y, &model.predict(&d.x));
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn one_nn_memorizes_training_data() {
        let d = easy();
        let model = KnnParams { k: 1 }.fit(&d.x, &d.y, 3);
        let acc = accuracy(&d.y, &model.predict(&d.x));
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn knn_votes_with_k3() {
        let x = Matrix::from_rows(&[
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![10.0],
            vec![10.1],
            vec![10.2],
        ]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let model = KnnParams { k: 3 }.fit(&x, &y, 2);
        assert_eq!(model.predict_row(&[0.05]), 0);
        assert_eq!(model.predict_row(&[9.9]), 1);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let x = Matrix::from_rows(&[vec![f64::NAN, 1.0], vec![1.0, f64::INFINITY]]);
        let y = vec![0, 1];
        for trainer in [
            Box::new(GaussianNbParams) as Box<dyn Trainer>,
            Box::new(LdaParams),
            Box::new(KnnParams { k: 1 }),
        ] {
            let m = trainer.fit(&x, &y, 2);
            assert!(m.predict_row(&[f64::NAN, 0.0]) < 2);
        }
    }
}
