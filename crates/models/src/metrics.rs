//! Evaluation metrics.

/// Fraction of matching predictions.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(a, b)| a == b).count();
    correct as f64 / y_true.len() as f64
}

/// `1 - accuracy` (the paper's pipeline error, Eq. 2).
pub fn error_rate(y_true: &[usize], y_pred: &[usize]) -> f64 {
    1.0 - accuracy(y_true, y_pred)
}

/// Area under the ROC curve for binary labels given positive-class
/// scores, computed via the rank statistic (ties get half credit).
/// Returns 0.5 when either class is absent.
pub fn auc_binary(y_true: &[usize], scores: &[f64]) -> f64 {
    assert_eq!(y_true.len(), scores.len());
    let n_pos = y_true.iter().filter(|&&y| y == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    // total_cmp instead of partial_cmp: a diverged model can emit NaN
    // scores, and a metric must never panic on the evaluation path.
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Sum of average ranks of positives (1-based, ties averaged).
    let mut rank_sum = 0.0;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if y_true[k] == 1 {
                rank_sum += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Confusion matrix `m[true][pred]`.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(error_rate(&[0, 1], &[1, 0]), 1.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let y = [0, 0, 1, 1];
        assert_eq!(auc_binary(&y, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(auc_binary(&y, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_random_scores_half() {
        let y = [0, 1, 0, 1];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert!((auc_binary(&y, &s) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_class_returns_half() {
        assert_eq!(auc_binary(&[1, 1], &[0.1, 0.9]), 0.5);
        assert_eq!(auc_binary(&[0, 0], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn auc_known_value() {
        // One mis-ranked pair out of 4 -> 0.75.
        let y = [0, 1, 0, 1];
        let s = [0.4, 0.3, 0.1, 0.8];
        assert!((auc_binary(&y, &s) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 0, 1, 2], &[0, 1, 1, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][2], 1);
    }
}
