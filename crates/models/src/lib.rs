#![warn(missing_docs)]
//! Downstream classifiers for Auto-FP.
//!
//! The paper evaluates pipelines with three downstream models chosen from
//! the Kaggle survey: Logistic Regression (top linear model), XGBoost
//! (top tree ensemble), and an MLP (§5.1). This crate implements all
//! three from scratch — [`linear::LogisticRegression`], [`gbdt::Gbdt`]
//! (a histogram-based second-order gradient-boosting machine standing in
//! for XGBoost), and [`mlp::MlpClassifier`] — plus the auxiliary
//! learners the meta-feature landmarkers need ([`tree::DecisionTree`],
//! [`simple`]: Gaussian naive Bayes, diagonal LDA, k-NN), shared
//! [`metrics`], and stratified [`cv`].
//!
//! Every trainer implements [`Trainer`] and supports *budgeted* fitting
//! (a fraction of its iterations), which is what the bandit-based search
//! algorithms (Hyperband, BOHB) allocate. Trainers also support
//! *cooperative cancellation* ([`cancel::CancelToken`]): the iteration
//! loops of all three model families poll a token between epochs /
//! boosting rounds, so a wall-clock deadline can stop training mid-trial
//! instead of overshooting by a full fit.

pub mod artifact;
pub mod cancel;
pub mod classifier;
pub mod cv;
pub mod gbdt;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod simple;
pub mod tree;

pub use artifact::TrainedModel;
pub use cancel::CancelToken;
pub use classifier::{Classifier, ModelKind, Trainer};
pub use gbdt::{Gbdt, GbdtParams};
pub use linear::{LogisticRegression, LogisticParams};
pub use metrics::{accuracy, auc_binary, error_rate};
pub use mlp::{MlpClassifier, MlpParams};
pub use tree::{DecisionTree, DecisionTreeParams};
