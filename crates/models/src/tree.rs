//! CART-style decision tree classifier (Gini impurity, exact splits).
//!
//! Used three ways in the reproduction: as the rule learner of the §2.2
//! data-characteristics experiment (Table 1), as the landmarking
//! meta-features' base learner, and (depth-limited, feature-subsampled)
//! as a building block for ensemble baselines.

use crate::classifier::{Classifier, Trainer};
use autofp_linalg::rng::{rng_from_seed, sample_indices};
use autofp_linalg::Matrix;

/// Hyperparameters for [`DecisionTree`].
#[derive(Debug, Clone)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (`None` = grow until pure, sklearn "No Limit").
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// If set, consider only this many randomly chosen features per node.
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams { max_depth: None, min_samples_split: 2, max_features: None, seed: 0 }
    }
}

impl DecisionTreeParams {
    /// Default parameters with the given depth limit.
    pub fn with_depth(depth: Option<usize>) -> Self {
        DecisionTreeParams { max_depth: depth, ..Default::default() }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { probs: Vec<f64> },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// A trained decision tree.
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (root = 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, 0)
    }

    fn leaf_probs(&self, row: &[f64]) -> &[f64] {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { probs } => return probs,
                Node::Split { feature, threshold, left, right } => {
                    let v = row.get(*feature).copied().unwrap_or(0.0);
                    i = if v.is_finite() && v <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn predict_row(&self, row: &[f64]) -> usize {
        crate::linear::argmax(self.leaf_probs(row))
    }

    fn predict_proba_row(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut p = self.leaf_probs(row).to_vec();
        p.resize(n_classes.max(self.n_classes), 0.0);
        p.truncate(n_classes);
        p
    }
}

impl Trainer for DecisionTreeParams {
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        _budget: f64,
    ) -> Box<dyn Classifier> {
        let mut builder = Builder {
            x,
            y,
            n_classes,
            params: self.clone(),
            nodes: Vec::new(),
            rng_state: self.seed,
        };
        let indices: Vec<usize> = (0..x.nrows()).collect();
        builder.build(&indices, 0);
        Box::new(DecisionTree { nodes: builder.nodes, n_classes })
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [usize],
    n_classes: usize,
    params: DecisionTreeParams,
    nodes: Vec<Node>,
    rng_state: u64,
}

impl Builder<'_> {
    /// Build the subtree over `indices`; returns its node id.
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let counts = self.class_counts(indices);
        let n = indices.len();
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        let depth_stop = self.params.max_depth.is_some_and(|d| depth >= d);
        if pure || depth_stop || n < self.params.min_samples_split {
            return self.push_leaf(&counts, n);
        }
        match self.best_split(indices, &counts) {
            None => self.push_leaf(&counts, n),
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.x.get(i, feature) <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return self.push_leaf(&counts, n);
                }
                // Reserve our slot before children so the root is node 0.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { probs: vec![] });
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }

    fn push_leaf(&mut self, counts: &[usize], n: usize) -> usize {
        let probs: Vec<f64> = if n == 0 {
            vec![1.0 / self.n_classes as f64; self.n_classes]
        } else {
            counts.iter().map(|&c| c as f64 / n as f64).collect()
        };
        self.nodes.push(Node::Leaf { probs });
        self.nodes.len() - 1
    }

    fn class_counts(&self, indices: &[usize]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[self.y[i]] += 1;
        }
        counts
    }

    /// Best (feature, threshold) by Gini gain, or `None` if nothing splits.
    fn best_split(&mut self, indices: &[usize], counts: &[usize]) -> Option<(usize, f64)> {
        let n = indices.len() as f64;
        let parent_gini = gini(counts, indices.len());
        let d = self.x.ncols();
        let features: Vec<usize> = match self.params.max_features {
            Some(k) if k < d => {
                self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
                let mut rng = rng_from_seed(self.rng_state);
                sample_indices(&mut rng, d, k)
            }
            _ => (0..d).collect(),
        };

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        let mut sorted = indices.to_vec();
        for &f in &features {
            sorted.sort_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));
            let mut left_counts = vec![0usize; self.n_classes];
            let mut n_left = 0usize;
            for w in 0..sorted.len() - 1 {
                let i = sorted[w];
                left_counts[self.y[i]] += 1;
                n_left += 1;
                let v = self.x.get(i, f);
                let v_next = self.x.get(sorted[w + 1], f);
                if v == v_next || !v.is_finite() || !v_next.is_finite() {
                    continue;
                }
                let n_right = sorted.len() - n_left;
                let right_counts: Vec<usize> =
                    counts.iter().zip(&left_counts).map(|(&t, &l)| t - l).collect();
                let child = (n_left as f64 / n) * gini(&left_counts, n_left)
                    + (n_right as f64 / n) * gini(&right_counts, n_right);
                let gain = parent_gini - child;
                // Zero-gain splits are admitted (as in sklearn): on
                // XOR-like data the first split has zero Gini gain but
                // enables perfect children. Recursion still terminates
                // because both children are strictly smaller.
                if gain > -1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, (v + v_next) / 2.0));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / nf).powi(2)).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn fits_xor_perfectly_without_depth_limit() {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0, 1, 1, 0];
        let tree = DecisionTreeParams::default().fit(&x, &y, 2);
        assert_eq!(tree.predict(&x), y);
    }

    #[test]
    fn depth_limit_is_respected() {
        let rows: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..128).map(|i| ((i / 2) % 2) as usize).collect();
        let x = Matrix::from_rows(&rows);
        let params = DecisionTreeParams::with_depth(Some(2));
        let boxed = params.fit(&x, &y, 2);
        // Downcast is awkward through the trait; rebuild directly.
        let mut builder_check = params.clone();
        builder_check.max_depth = Some(2);
        let tree2 = builder_check.fit(&x, &y, 2);
        // Depth-2 tree has at most 4 leaves -> cannot exceed 7 nodes; it
        // also cannot memorize the period-4 pattern perfectly.
        let acc = accuracy(&y, &tree2.predict(&x));
        assert!(acc < 1.0);
        let _ = boxed;
    }

    #[test]
    fn stump_splits_on_informative_feature() {
        // Feature 1 is informative, feature 0 is constant.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.1],
            vec![1.0, 0.2],
            vec![1.0, 0.9],
            vec![1.0, 0.8],
        ]);
        let y = vec![0, 0, 1, 1];
        let tree = DecisionTreeParams::with_depth(Some(1)).fit(&x, &y, 2);
        assert_eq!(tree.predict(&x), y);
        // Unseen extreme values follow the split direction.
        assert_eq!(tree.predict_row(&[1.0, -5.0]), 0);
        assert_eq!(tree.predict_row(&[1.0, 5.0]), 1);
    }

    #[test]
    fn constant_features_yield_single_leaf_majority() {
        let x = Matrix::filled(6, 3, 2.0);
        let y = vec![1, 1, 1, 1, 0, 0];
        let tree = DecisionTreeParams::default().fit(&x, &y, 2);
        assert_eq!(tree.predict_row(&[2.0, 2.0, 2.0]), 1);
    }

    #[test]
    fn probabilities_reflect_leaf_distribution() {
        let x = Matrix::filled(4, 1, 0.0);
        let y = vec![0, 0, 0, 1];
        let tree = DecisionTreeParams::default().fit(&x, &y, 2);
        let p = tree.predict_proba_row(&[0.0], 2);
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_features_subsampling_is_deterministic() {
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![(i % 7) as f64, (i % 5) as f64, (i % 3) as f64]).collect();
        let y: Vec<usize> = (0..60).map(|i| (i % 2) as usize).collect();
        let x = Matrix::from_rows(&rows);
        let mut params = DecisionTreeParams::default();
        params.max_features = Some(1);
        params.seed = 9;
        let a = params.fit(&x, &y, 2).predict(&x);
        let b = params.fit(&x, &y, 2).predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_nan_features_at_predict_time() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = vec![0, 1];
        let tree = DecisionTreeParams::default().fit(&x, &y, 2);
        // NaN routes right; must not panic.
        let p = tree.predict_row(&[f64::NAN]);
        assert!(p < 2);
    }
}
