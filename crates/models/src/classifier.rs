//! The classifier/trainer abstraction shared by the whole benchmark.

use autofp_linalg::Matrix;

use crate::cancel::CancelToken;
use crate::gbdt::GbdtParams;
use crate::linear::LogisticParams;
use crate::mlp::MlpParams;

/// A trained classifier.
pub trait Classifier: Send + Sync {
    /// Predict the class of a single feature row.
    fn predict_row(&self, row: &[f64]) -> usize;

    /// Predict classes for every row of a matrix.
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        x.rows_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Class-probability estimates for a row, if the model provides them.
    /// The default derives a degenerate one-hot from `predict_row`.
    fn predict_proba_row(&self, row: &[f64], n_classes: usize) -> Vec<f64> {
        let mut p = vec![0.0; n_classes];
        p[self.predict_row(row).min(n_classes - 1)] = 1.0;
        p
    }
}

/// A classifier *training procedure* (model family + hyperparameters).
///
/// `budget` is the fraction of the trainer's iteration budget to spend,
/// in `(0, 1]` — the resource axis Hyperband/BOHB allocate (number of
/// boosting rounds for the GBDT, epochs for LR/MLP).
pub trait Trainer: Send + Sync {
    /// Fit on features `x` and labels `y` (`y[i] < n_classes`), spending
    /// `budget` of the full iteration budget.
    fn fit_budgeted(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
    ) -> Box<dyn Classifier>;

    /// Fit with the full budget.
    fn fit(&self, x: &Matrix, y: &[usize], n_classes: usize) -> Box<dyn Classifier> {
        self.fit_budgeted(x, y, n_classes, 1.0)
    }

    /// Fit like [`Trainer::fit_budgeted`], additionally polling `cancel`
    /// between iterations (epochs / boosting rounds) and returning the
    /// partially trained model early when it fires.
    ///
    /// The default implementation ignores the token (correct for
    /// trainers without an iteration loop); the three paper model
    /// families override it. A token that never fires must not change
    /// the result in any implementation.
    fn fit_cancellable(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        budget: f64,
        cancel: &CancelToken,
    ) -> Box<dyn Classifier> {
        let _ = cancel;
        self.fit_budgeted(x, y, n_classes, budget)
    }

    /// Short name for reports ("LR", "XGB", "MLP", ...).
    fn name(&self) -> &'static str;
}

/// The paper's three downstream model families with their default
/// hyperparameters, as a convenient value type for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression (scikit-learn `LogisticRegression` analogue).
    Lr,
    /// Gradient-boosted trees (XGBoost analogue).
    Xgb,
    /// One-hidden-layer MLP (scikit-learn `MLPClassifier` analogue).
    Mlp,
}

impl ModelKind {
    /// All three, in the paper's reporting order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Lr, ModelKind::Xgb, ModelKind::Mlp];

    /// Report name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Lr => "LR",
            ModelKind::Xgb => "XGB",
            ModelKind::Mlp => "MLP",
        }
    }

    /// Construct the default trainer for this family.
    ///
    /// `seed` controls any training stochasticity (minibatch order,
    /// initialization); the paper fixes library defaults, we fix seeds.
    pub fn trainer(self, seed: u64) -> Box<dyn Trainer> {
        match self {
            ModelKind::Lr => Box::new(LogisticParams::default().with_seed(seed)),
            ModelKind::Xgb => Box::new(GbdtParams::default().with_seed(seed)),
            ModelKind::Mlp => Box::new(MlpParams::default().with_seed(seed)),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A constant-prediction classifier (majority class); useful as a
/// baseline and as the degenerate result of zero-budget training.
pub struct MajorityClassifier {
    /// The predicted (majority) class index.
    pub class: usize,
}

impl MajorityClassifier {
    /// Fit: pick the most frequent label.
    pub fn fit(y: &[usize], n_classes: usize) -> MajorityClassifier {
        let mut counts = vec![0usize; n_classes];
        for &c in y {
            counts[c] += 1;
        }
        let class = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        MajorityClassifier { class }
    }
}

impl Classifier for MajorityClassifier {
    fn predict_row(&self, _row: &[f64]) -> usize {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_picks_modal_class() {
        let m = MajorityClassifier::fit(&[0, 1, 1, 2, 1], 3);
        assert_eq!(m.class, 1);
        assert_eq!(m.predict_row(&[0.0]), 1);
        let x = Matrix::zeros(4, 2);
        assert_eq!(m.predict(&x), vec![1, 1, 1, 1]);
    }

    #[test]
    fn default_proba_is_one_hot() {
        let m = MajorityClassifier { class: 2 };
        assert_eq!(m.predict_proba_row(&[0.0], 4), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::Lr.name(), "LR");
        assert_eq!(ModelKind::Xgb.to_string(), "XGB");
        assert_eq!(ModelKind::ALL.len(), 3);
    }
}
