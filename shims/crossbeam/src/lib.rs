//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`scope`] — the only `crossbeam` API the workspace uses —
//! implemented over `std::thread::scope` (stable since Rust 1.63).
//! Matching `crossbeam::scope`, the closure passed to [`Scope::spawn`]
//! receives a scope argument (ignored by every caller here) and a
//! panicking worker surfaces as an `Err` from [`scope`].

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle workers use to spawn further scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure's argument mirrors
    /// `crossbeam`'s nested-scope handle; callers here ignore it.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// joins all workers before returning. Returns `Err` with the panic
/// payload if any worker (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::scope;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(r.is_ok());
        assert_eq!(counter.into_inner(), 4);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_returns_closure_value() {
        assert_eq!(scope(|_| 42).unwrap(), 42);
    }
}
