//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides the poison-free [`Mutex`] API the workspace uses, backed by
//! `std::sync::Mutex`. A poisoned lock (a panic while held) propagates
//! the inner value anyway, matching `parking_lot`'s no-poisoning
//! semantics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
