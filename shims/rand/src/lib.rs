//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact API subset* it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — not the
//! same stream as upstream `rand`'s `StdRng` (ChaCha12), but every
//! consumer in this workspace only relies on *determinism for a fixed
//! seed* and basic statistical quality, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value extension methods used across the workspace.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (floats in `[0, 1)`, integers over
    /// their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Types that can be sampled uniformly without extra parameters
/// (the shim's analogue of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a raw 64-bit draw onto `0..span` without modulo bias
/// (widening-multiply method).
#[inline]
fn index_below(raw: u64, span: u128) -> u128 {
    (raw as u128 * span) >> 64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + index_below(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + index_below(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's deterministic RNG (xoshiro256** behind the
    /// upstream `StdRng` name).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed through splitmix64, the standard way to
            // initialize xoshiro state (avoids the all-zero state).
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E3779B97F4A7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
                x ^ (x >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace
    /// uses).
    pub trait SliceRandom {
        /// Shuffle in place (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo |= v < 0.1;
            hi |= v > 0.9;
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
            let v = rng.gen_range(3..=4u64);
            assert!(v == 3 || v == 4);
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-3..3i32);
            assert!((-3..3).contains(&i));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
