//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this minimal
//! harness mirrors the `criterion` API surface the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::from_parameter`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — timing each
//! benchmark with `std::time::Instant` and printing a mean-per-iteration
//! line instead of criterion's statistical report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level bench driver (one per `criterion_group!`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 100 }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), 100, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion: number of
    /// samples; here used directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (criterion renders its report here; the shim has
    /// already printed per-benchmark lines).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value (row count, model name, …).
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId { label: p.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, p: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), p) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations (plus a short
    /// warm-up that is not counted).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
    let name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    println!("bench: {name:<48} {:>12.3} us/iter ({} iters)", per_iter * 1e6, b.iters);
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declare a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 2 warm-up + 5 timed.
        assert_eq!(runs, 7);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test-2");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::from_parameter(9usize), &9usize, |b, &n| {
            b.iter(|| assert_eq!(n, 9))
        });
        group.finish();
    }
}
