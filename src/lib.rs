#![warn(missing_docs)]
//! # autofp — automated feature preprocessing for tabular data
//!
//! A from-scratch Rust implementation of the system studied in *"Auto-FP:
//! An Experimental Study of Automated Feature Preprocessing for Tabular
//! Data"* (EDBT 2024): seven scikit-learn-style feature preprocessors,
//! pipeline search over them with 15 HPO/NAS-derived algorithms, three
//! downstream classifier families, and the full benchmark harness.
//!
//! This facade crate re-exports the workspace's public API. Start with
//! [`preprocess::Pipeline`], [`core::Evaluator`], and
//! [`search::make_searcher`]; `examples/quickstart.rs` walks through the
//! whole flow.
//!
//! ```
//! use autofp::data::SynthConfig;
//! let dataset = SynthConfig::new("demo", 200, 8, 2, 42).generate();
//! assert_eq!(dataset.n_rows(), 200);
//! ```

pub use autofp_automl as automl;
pub use autofp_core as core;
pub use autofp_data as data;
pub use autofp_evald as evald;
pub use autofp_linalg as linalg;
pub use autofp_metafeatures as metafeatures;
pub use autofp_models as models;
pub use autofp_preprocess as preprocess;
pub use autofp_search as search;
pub use autofp_serve as serve;
pub use autofp_surrogate as surrogate;
