//! The `evald` worker daemon binary — thin wrapper over
//! [`autofp_evald::cli`]. Lives in the root package so integration
//! tests can locate the built binary via `CARGO_BIN_EXE_evald`.

fn main() {
    std::process::exit(autofp_evald::cli::run(std::env::args().skip(1).collect()));
}
