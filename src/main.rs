//! `autofp` — command-line pipeline search on a CSV file, plus the
//! fit-once / serve-many path.
//!
//! ```text
//! autofp search --csv data.csv [--model lr|xgb|mlp] [--alg PBT] \
//!        [--budget-ms 5000 | --evals 200] [--max-len 7] [--seed 42] \
//!        [--space default|low|high]
//! autofp export --csv data.csv --out model.afp [--pipeline NAMES] [...]
//! autofp serve --artifact model.afp [--bind ADDR] [--port P] [--threads N]
//! autofp predict (--artifact model.afp | --addr HOST:PORT) --csv rows.csv
//! autofp repo gc --dir DIR [--keep CTX]... [--dry-run]
//! autofp algorithms            # list the 15 search algorithms
//! autofp preprocessors         # list the 7 preprocessors
//! ```
//!
//! The CSV format is: optional header, numeric feature columns, label in
//! the last column (integers or strings). `predict` CSVs carry feature
//! columns only (no label).

use autofp::automl::MetaStore;
use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::csv::read_csv_file;
use autofp::data::Dataset;
use autofp::metafeatures::{extract, ExtractConfig};
use autofp::models::classifier::ModelKind;
use autofp::preprocess::{ParamSpace, Pipeline, PreprocKind};
use autofp::search::{make_searcher, AlgName};
use autofp::serve::{
    fit_artifact, parse_feature_rows, RowOutcome, ServeArtifact, ServeClient, ServeEngine,
    ServeServer,
};
use std::io::Write;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("search") => cmd_search(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("repo") => cmd_repo(&args[1..]),
        Some("algorithms") => cmd_algorithms(),
        Some("preprocessors") => cmd_preprocessors(),
        Some("help") | Some("--help") | Some("-h") | None => usage(0),
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage(2);
        }
    }
}

fn usage(code: i32) -> ! {
    println!(
        "autofp — automated feature preprocessing for tabular data\n\
         \n\
         USAGE:\n\
         \u{20}  autofp search --csv FILE [options]   search the best pipeline for a CSV\n\
         \u{20}  autofp export --csv FILE --out FILE  fit a pipeline+model, write an artifact\n\
         \u{20}  autofp serve --artifact FILE         serve an artifact over TCP\n\
         \u{20}  autofp predict ... --csv FILE        predict rows (file or TCP mode)\n\
         \u{20}  autofp repo gc --dir DIR             sweep dead trial-store segments\n\
         \u{20}  autofp algorithms                    list the 15 search algorithms\n\
         \u{20}  autofp preprocessors                 list the 7 preprocessors\n\
         \n\
         SEARCH OPTIONS:\n\
         \u{20}  --csv FILE          CSV with numeric features, label last (required)\n\
         \u{20}  --model lr|xgb|mlp  downstream model family      [default: lr]\n\
         \u{20}  --alg NAME          search algorithm (see `autofp algorithms`) [default: PBT]\n\
         \u{20}  --budget-ms MS      wall-clock budget            [default: 5000]\n\
         \u{20}  --evals N           evaluation-count budget (overrides --budget-ms)\n\
         \u{20}  --max-len N         maximum pipeline length      [default: 7]\n\
         \u{20}  --space default|low|high   parameter search space [default: default]\n\
         \u{20}  --seed N            random seed                  [default: 42]\n\
         \u{20}  --no-header         the CSV has no header row\n\
         \u{20}  --meta              also print the 40 dataset meta-features\n\
         \n\
         EXPORT OPTIONS (search options above also apply):\n\
         \u{20}  --out FILE          artifact output path (required)\n\
         \u{20}  --pipeline NAMES    comma-separated preprocessor names; skips the search\n\
         \n\
         SERVE OPTIONS:\n\
         \u{20}  --artifact FILE     artifact to serve (required)\n\
         \u{20}  --bind ADDR         IP address to bind         [default: 127.0.0.1]\n\
         \u{20}  --port P            TCP port (0 = OS-assigned) [default: 0]\n\
         \u{20}  --threads N         per-batch prediction threads [default: 1]\n\
         \n\
         PREDICT OPTIONS:\n\
         \u{20}  --artifact FILE     predict in-process from an artifact file\n\
         \u{20}  --addr HOST:PORT    predict against a running `autofp serve`\n\
         \u{20}  --csv FILE          feature rows, no label column (required)\n\
         \u{20}  --threads N         file-mode prediction threads [default: 1]\n\
         \u{20}  --no-header         the CSV has no header row\n\
         \n\
         REPO GC OPTIONS:\n\
         \u{20}  --dir DIR           trial-store directory (required)\n\
         \u{20}  --keep CTX          context to keep (repeatable)\n\
         \u{20}  --dry-run           report what would be removed, delete nothing"
    );
    exit(code)
}

struct SearchArgs {
    csv: String,
    model: ModelKind,
    alg: AlgName,
    budget: Budget,
    max_len: usize,
    seed: u64,
    space: &'static str,
    header: bool,
    meta: bool,
}

fn parse_search_args(args: &[String]) -> SearchArgs {
    let mut out = SearchArgs {
        csv: String::new(),
        model: ModelKind::Lr,
        alg: AlgName::Pbt,
        budget: Budget::wall_clock(Duration::from_millis(5000)),
        max_len: 7,
        seed: 42,
        space: "default",
        header: true,
        meta: false,
    };
    let mut i = 0;
    let bail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        usage(2)
    };
    while i < args.len() {
        let key = args[i].as_str();
        let val = || -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| bail(&format!("{key} needs a value")))
        };
        match key {
            "--csv" => {
                out.csv = val().to_string();
                i += 2;
            }
            "--model" => {
                out.model = match val().to_ascii_lowercase().as_str() {
                    "lr" => ModelKind::Lr,
                    "xgb" => ModelKind::Xgb,
                    "mlp" => ModelKind::Mlp,
                    other => bail(&format!("unknown model '{other}'")),
                };
                i += 2;
            }
            "--alg" => {
                out.alg = AlgName::parse(val())
                    .unwrap_or_else(|| bail(&format!("unknown algorithm '{}'", val())));
                i += 2;
            }
            "--budget-ms" => {
                let ms: u64 = val().parse().unwrap_or_else(|_| bail("--budget-ms needs an integer"));
                out.budget = Budget::wall_clock(Duration::from_millis(ms));
                i += 2;
            }
            "--evals" => {
                let n: usize = val().parse().unwrap_or_else(|_| bail("--evals needs an integer"));
                out.budget = Budget::evals(n);
                i += 2;
            }
            "--max-len" => {
                out.max_len = val().parse().unwrap_or_else(|_| bail("--max-len needs an integer"));
                i += 2;
            }
            "--seed" => {
                out.seed = val().parse().unwrap_or_else(|_| bail("--seed needs an integer"));
                i += 2;
            }
            "--space" => {
                out.space = match val() {
                    "default" => "default",
                    "low" => "low",
                    "high" => "high",
                    other => bail(&format!("unknown space '{other}' (default|low|high)")),
                };
                i += 2;
            }
            "--no-header" => {
                out.header = false;
                i += 1;
            }
            "--meta" => {
                out.meta = true;
                i += 1;
            }
            other => bail(&format!("unknown option '{other}'")),
        }
    }
    if out.csv.is_empty() {
        bail("--csv is required");
    }
    out
}

/// Read a labelled CSV or exit with a diagnostic.
fn load_dataset(csv: &str, header: bool) -> Dataset {
    let result = if header {
        read_csv_file(csv)
    } else {
        std::fs::read_to_string(csv).and_then(|text| {
            autofp::data::csv::parse_csv("csv", &text, false)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
        })
    };
    match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {csv}: {e}");
            exit(1);
        }
    }
}

fn cmd_search(args: &[String]) {
    let a = parse_search_args(args);
    let dataset = load_dataset(&a.csv, a.header);
    println!(
        "dataset: {} rows x {} cols, {} classes",
        dataset.n_rows(),
        dataset.n_cols(),
        dataset.n_classes
    );
    if a.meta {
        let mf = extract(&dataset, &ExtractConfig { seed: a.seed, ..Default::default() });
        println!("\nmeta-features:");
        for (name, value) in autofp::metafeatures::NAMES.iter().zip(mf.as_slice()) {
            println!("  {name:<45} {value:.4}");
        }
        println!();
        let _ = MetaStore::new(); // reserved for a future --warm-store flag
    }

    let space = match a.space {
        "low" => ParamSpace::low_cardinality(),
        "high" => ParamSpace::high_cardinality(),
        _ => ParamSpace::default_space(),
    };
    let evaluator = Evaluator::new(
        &dataset,
        EvalConfig { model: a.model, train_fraction: 0.8, seed: a.seed, train_subsample: None },
    );
    println!("model: {}   algorithm: {}   space: {}", a.model, a.alg, space.name());
    println!("no-FP baseline accuracy: {:.4}", evaluator.baseline_accuracy());

    let mut searcher = make_searcher(a.alg, space, a.max_len, a.seed);
    let outcome = run_search(searcher.as_mut(), &evaluator, a.budget);
    match outcome.best() {
        None => {
            eprintln!("budget too small: no pipeline was evaluated");
            exit(1);
        }
        Some(best) => {
            println!("\nevaluated {} pipelines in {:?}", outcome.history.len(), outcome.elapsed);
            let (pick, prep, train) = outcome.breakdown.percentages();
            println!("time breakdown: Pick {pick:.0}% | Prep {prep:.0}% | Train {train:.0}%");
            println!("\nbest pipeline:  {}", best.pipeline);
            println!("best accuracy:  {:.4}", best.accuracy);
            println!(
                "improvement:    {:+.2} percentage points over no-FP",
                (best.accuracy - evaluator.baseline_accuracy()) * 100.0
            );
        }
    }
}

/// Parse a comma-separated preprocessor list (`autofp preprocessors`
/// names, case-insensitive) into a pipeline.
fn parse_pipeline(spec: &str) -> Pipeline {
    let mut kinds = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match PreprocKind::ALL.iter().find(|k| k.name().eq_ignore_ascii_case(name)) {
            Some(kind) => kinds.push(*kind),
            None => {
                eprintln!("error: unknown preprocessor '{name}' (see `autofp preprocessors`)\n");
                usage(2);
            }
        }
    }
    Pipeline::from_kinds(&kinds)
}

fn cmd_export(args: &[String]) {
    let mut out_path = String::new();
    let mut pipeline_spec: Option<String> = None;
    let mut search_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --out needs a value\n");
                    usage(2);
                };
                out_path = v.clone();
                i += 2;
            }
            "--pipeline" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --pipeline needs a value\n");
                    usage(2);
                };
                pipeline_spec = Some(v.clone());
                i += 2;
            }
            _ => {
                search_args.push(args[i].clone());
                i += 1;
            }
        }
    }
    if out_path.is_empty() {
        eprintln!("error: --out is required\n");
        usage(2);
    }
    let a = parse_search_args(&search_args);
    // Validate the explicit pipeline before touching the filesystem.
    let explicit = pipeline_spec.as_deref().map(parse_pipeline);
    let dataset = load_dataset(&a.csv, a.header);
    let config =
        EvalConfig { model: a.model, train_fraction: 0.8, seed: a.seed, train_subsample: None };

    let pipeline = match explicit {
        Some(p) => p,
        None => {
            // No explicit pipeline: search for the winner first, the
            // same way `autofp search` does.
            let space = match a.space {
                "low" => ParamSpace::low_cardinality(),
                "high" => ParamSpace::high_cardinality(),
                _ => ParamSpace::default_space(),
            };
            let evaluator = Evaluator::new(&dataset, config.clone());
            let mut searcher = make_searcher(a.alg, space, a.max_len, a.seed);
            let outcome = run_search(searcher.as_mut(), &evaluator, a.budget);
            match outcome.best() {
                Some(best) => {
                    println!(
                        "search: {} pipelines evaluated, winner `{}` at accuracy {:.4}",
                        outcome.history.len(),
                        best.pipeline,
                        best.accuracy
                    );
                    best.pipeline.clone()
                }
                None => {
                    eprintln!("budget too small: no pipeline was evaluated");
                    exit(1);
                }
            }
        }
    };

    let artifact = match fit_artifact(&dataset, &pipeline, &config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: export fit failed: {e}");
            exit(1);
        }
    };
    if let Err(e) = artifact.save(&out_path) {
        eprintln!("error: cannot write {out_path}: {e}");
        exit(1);
    }
    let m = &artifact.meta;
    println!(
        "exported {out_path}: dataset {} ({} features, {} classes), pipeline `{}`, \
         model {}, seed {}, {} train rows, accuracy {:.4}",
        m.dataset, m.n_features, m.n_classes, m.pipeline_key, m.model, m.seed, m.train_rows,
        m.accuracy
    );
}

/// Load an artifact or exit with a diagnostic.
fn load_artifact(path: &str) -> ServeArtifact {
    match ServeArtifact::load(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot load artifact {path}: {e}");
            exit(1);
        }
    }
}

fn cmd_serve(args: &[String]) {
    let mut artifact_path = String::new();
    let mut bind: std::net::IpAddr = std::net::Ipv4Addr::LOCALHOST.into();
    let mut port: u16 = 0;
    let mut threads: usize = 1;
    let mut i = 0;
    let bail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        usage(2)
    };
    while i < args.len() {
        let key = args[i].as_str();
        let val = || -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| bail(&format!("{key} needs a value")))
        };
        match key {
            "--artifact" => artifact_path = val().to_string(),
            "--bind" => {
                bind = val()
                    .parse()
                    .unwrap_or_else(|_| bail("--bind needs an IP address (e.g. 127.0.0.1)"));
            }
            "--port" => {
                port = val().parse().unwrap_or_else(|_| bail("--port needs an integer in 0..=65535"));
            }
            "--threads" => {
                threads = val().parse().unwrap_or_else(|_| bail("--threads needs an integer"));
            }
            other => bail(&format!("unknown option '{other}'")),
        }
        i += 2;
    }
    if artifact_path.is_empty() {
        bail("--artifact is required");
    }
    let artifact = load_artifact(&artifact_path);
    let m = &artifact.meta;
    eprintln!(
        "serving {}: pipeline `{}`, model {}, {} features, {} classes",
        m.dataset, m.pipeline_key, m.model, m.n_features, m.n_classes
    );
    let engine = Arc::new(ServeEngine::new(artifact));
    let server = match ServeServer::bind((bind, port), engine, threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind {bind}:{port}: {e}");
            exit(1);
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: local_addr: {e}");
            exit(1);
        }
    };
    // Supervisors block on this exact line; flush so a piped stdout
    // delivers it before the first request arrives.
    println!("autofp serve listening on {addr}");
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("error: serve: {e}");
        exit(1);
    }
}

/// Render predict outcomes — the one format both predict modes share,
/// so file mode and TCP mode are byte-comparable.
fn print_outcomes(outcomes: &[RowOutcome]) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for o in outcomes {
        let line = match o {
            RowOutcome::Predicted(class) => class.to_string(),
            RowOutcome::Rejected(kind) => format!("reject:{}", kind.name()),
        };
        if writeln!(out, "{line}").is_err() {
            exit(1);
        }
    }
    let _ = out.flush();
}

fn cmd_predict(args: &[String]) {
    let mut artifact_path = String::new();
    let mut addr = String::new();
    let mut csv = String::new();
    let mut threads: usize = 1;
    let mut header = true;
    let mut i = 0;
    let bail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        usage(2)
    };
    while i < args.len() {
        let key = args[i].as_str();
        let val = || -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| bail(&format!("{key} needs a value")))
        };
        match key {
            "--artifact" => {
                artifact_path = val().to_string();
                i += 2;
            }
            "--addr" => {
                addr = val().to_string();
                i += 2;
            }
            "--csv" => {
                csv = val().to_string();
                i += 2;
            }
            "--threads" => {
                threads = val().parse().unwrap_or_else(|_| bail("--threads needs an integer"));
                i += 2;
            }
            "--no-header" => {
                header = false;
                i += 1;
            }
            other => bail(&format!("unknown option '{other}'")),
        }
    }
    if csv.is_empty() {
        bail("--csv is required");
    }
    if artifact_path.is_empty() == addr.is_empty() {
        bail("exactly one of --artifact (file mode) or --addr (TCP mode) is required");
    }
    let text = match std::fs::read_to_string(&csv) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {csv}: {e}");
            exit(1);
        }
    };
    let rows = parse_feature_rows(&text, header);

    let (outcomes, predicted, rejected) = if addr.is_empty() {
        let engine = ServeEngine::new(load_artifact(&artifact_path));
        let report = engine.predict_batch(&rows, threads);
        let rejected = report.rejected_non_finite + report.rejected_arity;
        (report.outcomes, report.predicted, rejected)
    } else {
        let result = ServeClient::connect(&addr).and_then(|mut c| c.predict(rows));
        match result {
            Ok((outcomes, _stats)) => {
                let predicted = outcomes
                    .iter()
                    .filter(|o| matches!(o, RowOutcome::Predicted(_)))
                    .count() as u64;
                let rejected = outcomes.len() as u64 - predicted;
                (outcomes, predicted, rejected)
            }
            Err(e) => {
                eprintln!("error: predict against {addr}: {e}");
                exit(1);
            }
        }
    };
    print_outcomes(&outcomes);
    // Summary goes to stderr so the two modes' stdout stays
    // byte-identical and machine-consumable.
    eprintln!("{} rows: {predicted} predicted, {rejected} rejected", outcomes.len());
}

fn cmd_repo(args: &[String]) {
    if args.first().map(String::as_str) != Some("gc") {
        eprintln!("error: `autofp repo` supports one subcommand: gc\n");
        usage(2);
    }
    let args = &args[1..];
    let mut dir = String::new();
    let mut keep: Vec<String> = Vec::new();
    let mut dry_run = false;
    let mut i = 0;
    let bail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        usage(2)
    };
    while i < args.len() {
        let key = args[i].as_str();
        let val = || -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| bail(&format!("{key} needs a value")))
        };
        match key {
            "--dir" => {
                dir = val().to_string();
                i += 2;
            }
            "--keep" => {
                keep.push(val().to_string());
                i += 2;
            }
            "--dry-run" => {
                dry_run = true;
                i += 1;
            }
            other => bail(&format!("unknown option '{other}'")),
        }
    }
    if dir.is_empty() {
        bail("--dir is required");
    }
    let repo = match autofp::core::TrialRepo::open(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot open trial store {dir}: {e}");
            exit(1);
        }
    };
    let report = match repo.gc(&keep, dry_run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: gc failed: {e}");
            exit(1);
        }
    };
    let verb = if report.dry_run { "would remove" } else { "removed" };
    for seg in &report.removed {
        println!("{verb} {} ({} bytes, context `{}`)", seg.path.display(), seg.bytes, seg.context);
    }
    for path in &report.skipped {
        println!("skipped unreadable {}", path.display());
    }
    println!(
        "{} segments kept, {} {verb}, {} bytes {}",
        report.kept.len(),
        report.removed.len(),
        report.reclaimed_bytes,
        if report.dry_run { "reclaimable" } else { "reclaimed" },
    );
}

fn cmd_algorithms() {
    println!("The 15 Auto-FP search algorithms (paper Table 3):\n");
    println!("{:<11} {:<23} NOTES", "NAME", "CATEGORY");
    for alg in AlgName::ALL {
        let notes = match alg {
            AlgName::Pbt => "best overall average ranking in the paper",
            AlgName::Rs => "strong baseline",
            AlgName::Hyperband | AlgName::Bohb => "bandit: partial-training rungs",
            _ => "",
        };
        println!("{:<11} {:<23} {}", alg.as_str(), alg.category(), notes);
    }
}

fn cmd_preprocessors() {
    println!("The 7 feature preprocessors (paper §2.1):\n");
    for kind in PreprocKind::ALL {
        let what = match kind {
            PreprocKind::Binarizer => "threshold values to {0, 1}",
            PreprocKind::MaxAbsScaler => "scale each column by max |value|",
            PreprocKind::MinMaxScaler => "scale each column to [0, 1]",
            PreprocKind::Normalizer => "scale each row to unit norm",
            PreprocKind::PowerTransformer => "Yeo-Johnson transform toward normality",
            PreprocKind::QuantileTransformer => "map columns onto empirical quantiles",
            PreprocKind::StandardScaler => "zero-mean, unit-variance standardization",
        };
        println!("  {:<21} {}", kind.name(), what);
    }
}
