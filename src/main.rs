//! `autofp` — command-line pipeline search on a CSV file.
//!
//! ```text
//! autofp search --csv data.csv [--model lr|xgb|mlp] [--alg PBT] \
//!        [--budget-ms 5000 | --evals 200] [--max-len 7] [--seed 42] \
//!        [--space default|low|high]
//! autofp algorithms            # list the 15 search algorithms
//! autofp preprocessors         # list the 7 preprocessors
//! ```
//!
//! The CSV format is: optional header, numeric feature columns, label in
//! the last column (integers or strings).

use autofp::automl::MetaStore;
use autofp::core::{run_search, Budget, EvalConfig, Evaluator};
use autofp::data::csv::read_csv_file;
use autofp::metafeatures::{extract, ExtractConfig};
use autofp::models::classifier::ModelKind;
use autofp::preprocess::{ParamSpace, PreprocKind};
use autofp::search::{make_searcher, AlgName};
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("search") => cmd_search(&args[1..]),
        Some("algorithms") => cmd_algorithms(),
        Some("preprocessors") => cmd_preprocessors(),
        Some("help") | Some("--help") | Some("-h") | None => usage(0),
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            usage(2);
        }
    }
}

fn usage(code: i32) -> ! {
    println!(
        "autofp — automated feature preprocessing for tabular data\n\
         \n\
         USAGE:\n\
         \u{20}  autofp search --csv FILE [options]   search the best pipeline for a CSV\n\
         \u{20}  autofp algorithms                    list the 15 search algorithms\n\
         \u{20}  autofp preprocessors                 list the 7 preprocessors\n\
         \n\
         SEARCH OPTIONS:\n\
         \u{20}  --csv FILE          CSV with numeric features, label last (required)\n\
         \u{20}  --model lr|xgb|mlp  downstream model family      [default: lr]\n\
         \u{20}  --alg NAME          search algorithm (see `autofp algorithms`) [default: PBT]\n\
         \u{20}  --budget-ms MS      wall-clock budget            [default: 5000]\n\
         \u{20}  --evals N           evaluation-count budget (overrides --budget-ms)\n\
         \u{20}  --max-len N         maximum pipeline length      [default: 7]\n\
         \u{20}  --space default|low|high   parameter search space [default: default]\n\
         \u{20}  --seed N            random seed                  [default: 42]\n\
         \u{20}  --no-header         the CSV has no header row\n\
         \u{20}  --meta              also print the 40 dataset meta-features"
    );
    exit(code)
}

struct SearchArgs {
    csv: String,
    model: ModelKind,
    alg: AlgName,
    budget: Budget,
    max_len: usize,
    seed: u64,
    space: &'static str,
    header: bool,
    meta: bool,
}

fn parse_search_args(args: &[String]) -> SearchArgs {
    let mut out = SearchArgs {
        csv: String::new(),
        model: ModelKind::Lr,
        alg: AlgName::Pbt,
        budget: Budget::wall_clock(Duration::from_millis(5000)),
        max_len: 7,
        seed: 42,
        space: "default",
        header: true,
        meta: false,
    };
    let mut i = 0;
    let bail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n");
        usage(2)
    };
    while i < args.len() {
        let key = args[i].as_str();
        let val = || -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| bail(&format!("{key} needs a value")))
        };
        match key {
            "--csv" => {
                out.csv = val().to_string();
                i += 2;
            }
            "--model" => {
                out.model = match val().to_ascii_lowercase().as_str() {
                    "lr" => ModelKind::Lr,
                    "xgb" => ModelKind::Xgb,
                    "mlp" => ModelKind::Mlp,
                    other => bail(&format!("unknown model '{other}'")),
                };
                i += 2;
            }
            "--alg" => {
                out.alg = AlgName::parse(val())
                    .unwrap_or_else(|| bail(&format!("unknown algorithm '{}'", val())));
                i += 2;
            }
            "--budget-ms" => {
                let ms: u64 = val().parse().unwrap_or_else(|_| bail("--budget-ms needs an integer"));
                out.budget = Budget::wall_clock(Duration::from_millis(ms));
                i += 2;
            }
            "--evals" => {
                let n: usize = val().parse().unwrap_or_else(|_| bail("--evals needs an integer"));
                out.budget = Budget::evals(n);
                i += 2;
            }
            "--max-len" => {
                out.max_len = val().parse().unwrap_or_else(|_| bail("--max-len needs an integer"));
                i += 2;
            }
            "--seed" => {
                out.seed = val().parse().unwrap_or_else(|_| bail("--seed needs an integer"));
                i += 2;
            }
            "--space" => {
                out.space = match val() {
                    "default" => "default",
                    "low" => "low",
                    "high" => "high",
                    other => bail(&format!("unknown space '{other}' (default|low|high)")),
                };
                i += 2;
            }
            "--no-header" => {
                out.header = false;
                i += 1;
            }
            "--meta" => {
                out.meta = true;
                i += 1;
            }
            other => bail(&format!("unknown option '{other}'")),
        }
    }
    if out.csv.is_empty() {
        bail("--csv is required");
    }
    out
}

fn cmd_search(args: &[String]) {
    let a = parse_search_args(args);
    let dataset = match if a.header {
        read_csv_file(&a.csv)
    } else {
        std::fs::read_to_string(&a.csv)
            .and_then(|text| {
                autofp::data::csv::parse_csv("csv", &text, false)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
            })
    } {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", a.csv);
            exit(1);
        }
    };
    println!(
        "dataset: {} rows x {} cols, {} classes",
        dataset.n_rows(),
        dataset.n_cols(),
        dataset.n_classes
    );
    if a.meta {
        let mf = extract(&dataset, &ExtractConfig { seed: a.seed, ..Default::default() });
        println!("\nmeta-features:");
        for (name, value) in autofp::metafeatures::NAMES.iter().zip(mf.as_slice()) {
            println!("  {name:<45} {value:.4}");
        }
        println!();
        let _ = MetaStore::new(); // reserved for a future --warm-store flag
    }

    let space = match a.space {
        "low" => ParamSpace::low_cardinality(),
        "high" => ParamSpace::high_cardinality(),
        _ => ParamSpace::default_space(),
    };
    let evaluator = Evaluator::new(
        &dataset,
        EvalConfig { model: a.model, train_fraction: 0.8, seed: a.seed, train_subsample: None },
    );
    println!("model: {}   algorithm: {}   space: {}", a.model, a.alg, space.name());
    println!("no-FP baseline accuracy: {:.4}", evaluator.baseline_accuracy());

    let mut searcher = make_searcher(a.alg, space, a.max_len, a.seed);
    let outcome = run_search(searcher.as_mut(), &evaluator, a.budget);
    match outcome.best() {
        None => {
            eprintln!("budget too small: no pipeline was evaluated");
            exit(1);
        }
        Some(best) => {
            println!("\nevaluated {} pipelines in {:?}", outcome.history.len(), outcome.elapsed);
            let (pick, prep, train) = outcome.breakdown.percentages();
            println!("time breakdown: Pick {pick:.0}% | Prep {prep:.0}% | Train {train:.0}%");
            println!("\nbest pipeline:  {}", best.pipeline);
            println!("best accuracy:  {:.4}", best.accuracy);
            println!(
                "improvement:    {:+.2} percentage points over no-FP",
                (best.accuracy - evaluator.baseline_accuracy()) * 100.0
            );
        }
    }
}

fn cmd_algorithms() {
    println!("The 15 Auto-FP search algorithms (paper Table 3):\n");
    println!("{:<11} {:<23} NOTES", "NAME", "CATEGORY");
    for alg in AlgName::ALL {
        let notes = match alg {
            AlgName::Pbt => "best overall average ranking in the paper",
            AlgName::Rs => "strong baseline",
            AlgName::Hyperband | AlgName::Bohb => "bandit: partial-training rungs",
            _ => "",
        };
        println!("{:<11} {:<23} {}", alg.as_str(), alg.category(), notes);
    }
}

fn cmd_preprocessors() {
    println!("The 7 feature preprocessors (paper §2.1):\n");
    for kind in PreprocKind::ALL {
        let what = match kind {
            PreprocKind::Binarizer => "threshold values to {0, 1}",
            PreprocKind::MaxAbsScaler => "scale each column by max |value|",
            PreprocKind::MinMaxScaler => "scale each column to [0, 1]",
            PreprocKind::Normalizer => "scale each row to unit norm",
            PreprocKind::PowerTransformer => "Yeo-Johnson transform toward normality",
            PreprocKind::QuantileTransformer => "map columns onto empirical quantiles",
            PreprocKind::StandardScaler => "zero-mean, unit-variance standardization",
        };
        println!("  {:<21} {}", kind.name(), what);
    }
}
